//! Host wall-clock throughput of the simulator's hottest path: functional
//! execution at issue. Times a compute-dense workload (MatrixMul — long
//! full-mask ALU stretches, the register-file bandwidth case) and a
//! divergent one (SortingNetworks — partial masks and guard churn) and
//! reports **simulated thread-instructions per host second**.
//!
//! Unlike `BENCH_sweep.json`, this artifact intentionally carries host
//! timings: it is the perf-trajectory series for the execute path (AoS
//! per-thread loop → SoA warp-level `execute_warp`), not a determinism
//! baseline. Simulated counters in it remain bit-deterministic; only the
//! `wall_seconds` / `*_per_second` fields vary by host.
//!
//! Usage: `bench_hotpath [--small] [--reps N] [--out PATH] [--no-superblocks]
//!                       [--baseline PATH] [--label NAME] [--golden PATH]`
//!
//! * `--small` — test-scale inputs and fewer reps (the CI preset).
//! * `--baseline PATH` — a previously written `BENCH_hotpath.json` to embed
//!   as the `baseline` block, with per-workload speedups computed against
//!   it (how the AoS→SoA before/after series is recorded).
//! * `--label NAME` — tags the measured runs (e.g. `aos-exec-loop`,
//!   `soa-execute-warp`).
//! * `--golden PATH` — golden baseline for the SWI micro-assert (default
//!   `BENCH_golden.json`; skipped with a note if the file is absent).
//!   Before timing anything the binary re-runs the SWI and SBI+SWI
//!   hotpath cells at test scale and panics on any counter drift — the
//!   guard that the precomputed lane-permutation table (and any other
//!   hot-path rewrite) stays behaviour-invisible on the SWI lookup path.

use std::time::Instant;

use warpweave_bench::report::{json_escape, parse_golden_cells};
use warpweave_bench::{arg_value, harness};
use warpweave_core::SmConfig;
use warpweave_workloads::{by_name, run_prepared, Scale};

/// Schema tag of the hotpath payload.
const HOTPATH_SCHEMA: &str = "warpweave-bench-hotpath-v1";

/// The measured workloads: `(name, kind)`. MatrixMul is the compute-dense
/// target of the ≥1.3× goal; SortingNetworks exercises divergent masks.
const WORKLOADS: [(&str, &str); 2] = [
    ("MatrixMul", "compute-dense"),
    ("SortingNetworks", "divergent"),
];

struct RunResult {
    workload: &'static str,
    kind: &'static str,
    config: String,
    reps: u32,
    thread_instructions: u64,
    warp_instructions: u64,
    /// Issue grants that went through the superblock fused path.
    superblock_covered: u64,
    best_wall_seconds: f64,
    thread_instructions_per_second: f64,
}

impl RunResult {
    /// Fraction of warp instructions executed through the superblock
    /// engine (0 when superblocks are disabled or nothing fused).
    fn superblock_coverage(&self) -> f64 {
        if self.warp_instructions == 0 {
            0.0
        } else {
            self.superblock_covered as f64 / self.warp_instructions as f64
        }
    }
}

/// Times `reps` runs of one workload under `cfg`, keeping the best
/// (minimum) wall time — the least-disturbed measurement on a noisy host.
fn measure(
    cfg: &SmConfig,
    workload: &'static str,
    kind: &'static str,
    scale: Scale,
    reps: u32,
) -> RunResult {
    let w = by_name(workload).expect("registered workload");
    let mut best = f64::INFINITY;
    let mut thread_instructions = 0u64;
    let mut warp_instructions = 0u64;
    let mut superblock_covered = 0u64;
    for _ in 0..reps {
        let prepared = w.prepare(scale);
        let t = Instant::now();
        let stats = run_prepared(cfg, prepared, false)
            .unwrap_or_else(|e| panic!("{workload} on {}: {e}", cfg.name));
        let secs = t.elapsed().as_secs_f64();
        if secs < best {
            best = secs;
        }
        thread_instructions = stats.thread_instructions;
        warp_instructions = stats.warp_instructions;
        superblock_covered = stats.superblock_covered;
    }
    RunResult {
        workload,
        kind,
        config: cfg.name.clone(),
        reps,
        thread_instructions,
        warp_instructions,
        superblock_covered,
        best_wall_seconds: best,
        thread_instructions_per_second: thread_instructions as f64 / best.max(1e-12),
    }
}

fn render_runs(runs: &[RunResult], indent: &str) -> String {
    let lines: Vec<String> = runs
        .iter()
        .map(|r| {
            format!(
                "{indent}{{\"workload\": \"{}\", \"kind\": \"{}\", \"config\": \"{}\", \
                 \"reps\": {}, \"thread_instructions\": {}, \"warp_instructions\": {}, \
                 \"superblock_coverage\": {:.4}, \
                 \"wall_seconds\": {:.6}, \"thread_instructions_per_second\": {:.1}}}",
                json_escape(r.workload),
                r.kind,
                json_escape(&r.config),
                r.reps,
                r.thread_instructions,
                r.warp_instructions,
                r.superblock_coverage(),
                r.best_wall_seconds,
                r.thread_instructions_per_second
            )
        })
        .collect();
    lines.join(",\n")
}

/// Pulls `(workload, thread_instructions_per_second)` pairs out of a
/// previously written payload. The renderer puts one run per line with the
/// fields in a fixed order, so a line scan is exact for our own output.
fn parse_baseline_ips(text: &str) -> Vec<(String, f64)> {
    const WKEY: &str = "\"workload\": \"";
    const IKEY: &str = "\"thread_instructions_per_second\": ";
    let mut out = Vec::new();
    for line in text.lines() {
        let Some(wstart) = line.find(WKEY) else {
            continue;
        };
        let rest = &line[wstart + WKEY.len()..];
        let Some(wend) = rest.find('"') else { continue };
        let workload = rest[..wend].to_string();
        let Some(istart) = line.find(IKEY) else {
            continue;
        };
        let tail = &line[istart + IKEY.len()..];
        let num: String = tail
            .chars()
            .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
            .collect();
        if let Ok(v) = num.parse::<f64>() {
            // First occurrence wins: the baseline block of an already-merged
            // payload repeats workload names further down.
            if !out.iter().any(|(w, _)| *w == workload) {
                out.push((workload, v));
            }
        }
    }
    out
}

/// The SWI-path micro-assert: re-runs the hotpath workloads under the
/// registry-built `SWI` and `SBI+SWI` configs at test scale and checks
/// `cycles`/`thread_instructions` against the committed golden baseline.
/// Returns a short status string for the JSON payload; panics on drift.
fn check_swi_golden(golden_path: &str) -> String {
    let Ok(text) = std::fs::read_to_string(golden_path) else {
        eprintln!("swi golden micro-assert: {golden_path} not found, skipping");
        return format!("skipped ({golden_path} not found)");
    };
    let cells = parse_golden_cells(&text);
    let mut checked = 0usize;
    for config in ["SWI", "SBI+SWI"] {
        let cfg = SmConfig::with_policy(config).expect("registered policy");
        for (workload, _) in WORKLOADS {
            let key = harness::cell_key(workload, &cfg.name);
            let golden = cells
                .iter()
                .find(|c| c.key == key)
                .unwrap_or_else(|| panic!("golden baseline has no cell '{key}'"));
            let cell = harness::run_one_at(
                &cfg,
                by_name(workload).expect("registered").as_ref(),
                Scale::Test,
                false,
            );
            assert_eq!(
                (cell.stats.cycles, cell.stats.thread_instructions),
                (golden.cycles, golden.thread_instructions),
                "SWI golden micro-assert drifted on {key}"
            );
            checked += 1;
        }
    }
    eprintln!("swi golden micro-assert: {checked} cells bit-exact");
    format!("ok ({checked} cells)")
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let small = args.iter().any(|a| a == "--small");
    let out_path = arg_value(&args, "--out").unwrap_or_else(|| "BENCH_hotpath.json".into());
    let label = arg_value(&args, "--label").unwrap_or_else(|| "current".into());
    let baseline_path = arg_value(&args, "--baseline");
    let scale = if small { Scale::Test } else { Scale::Bench };
    let reps: u32 = arg_value(&args, "--reps")
        .map(|v| match v.parse() {
            Ok(n) if n >= 1 => n,
            _ => panic!("--reps takes a count of at least 1"),
        })
        .unwrap_or(if small { 2 } else { 3 });

    let golden_path = arg_value(&args, "--golden").unwrap_or_else(|| "BENCH_golden.json".into());
    let swi_check = check_swi_golden(&golden_path);

    // `--no-superblocks` measures the per-instruction interpreter on the
    // same host — the attribution control for the fused-path speedup.
    let superblocks = !args.iter().any(|a| a == "--no-superblocks");
    let cfg = SmConfig::baseline().with_superblocks(superblocks);
    let mut runs = Vec::new();
    for (workload, kind) in WORKLOADS {
        let r = measure(&cfg, workload, kind, scale, reps);
        eprintln!(
            "{:<16} {:<14} {:>12} thread-insns in {:>8.3} s  ({:>12.0} insns/s, {:.1}% superblock)",
            r.workload,
            r.kind,
            r.thread_instructions,
            r.best_wall_seconds,
            r.thread_instructions_per_second,
            100.0 * r.superblock_coverage()
        );
        runs.push(r);
    }

    let baseline = baseline_path.map(|p| {
        let text = std::fs::read_to_string(&p).unwrap_or_else(|e| panic!("read baseline {p}: {e}"));
        (parse_baseline_ips(&text), text)
    });

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!("  \"schema\": \"{HOTPATH_SCHEMA}\",\n"));
    json.push_str(&format!(
        "  \"preset\": \"{}\",\n",
        if small { "small" } else { "full" }
    ));
    json.push_str(&format!("  \"label\": \"{}\",\n", json_escape(&label)));
    json.push_str(&format!(
        "  \"swi_golden_check\": \"{}\",\n",
        json_escape(&swi_check)
    ));
    json.push_str("  \"runs\": [\n");
    json.push_str(&render_runs(&runs, "    "));
    json.push_str("\n  ]");
    if let Some((base_ips, _)) = &baseline {
        json.push_str(",\n  \"speedup_vs_baseline\": {");
        let mut first = true;
        for r in &runs {
            let Some((_, base)) = base_ips.iter().find(|(w, _)| w == r.workload) else {
                continue;
            };
            if !first {
                json.push_str(", ");
            }
            first = false;
            let speedup = r.thread_instructions_per_second / base.max(1e-12);
            json.push_str(&format!("\"{}\": {:.3}", json_escape(r.workload), speedup));
            eprintln!("{:<16} speedup vs baseline: {speedup:.3}x", r.workload);
        }
        json.push_str("},\n  \"baseline\": [\n");
        let base_lines: Vec<String> = base_ips
            .iter()
            .map(|(w, ips)| {
                format!(
                    "    {{\"workload\": \"{}\", \"thread_instructions_per_second\": {ips:.1}}}",
                    json_escape(w)
                )
            })
            .collect();
        json.push_str(&base_lines.join(",\n"));
        json.push_str("\n  ]");
    }
    json.push_str("\n}\n");
    std::fs::write(&out_path, &json).expect("write hotpath payload");
    eprintln!("wrote {out_path}");
}
