//! Regenerates **figure 9**: slowdown of limited-associativity SWI mask
//! lookup relative to the fully-associative CAM, on the irregular set.
//!
//! Uses a 24-warp pool (the table-3 provisioning) so the paper's
//! {full, 11-way, 3-way, direct-mapped} points partition evenly.
//!
//! Usage: `fig9_associativity [--no-verify] [--set regular|irregular]
//!                            [--checkpoint PATH]`
//!
//! With `--checkpoint`, every completed cell is flushed to `PATH` and an
//! interrupted run resumes from the last cell (bit-identical results; the
//! checkpoint is bound to the chosen `--set`'s grid identity).

use warpweave_bench::arg_value;
use warpweave_bench::grid;
use warpweave_bench::harness::{format_bandwidth_summary, gmean, run_matrix_figure};
use warpweave_core::SweepRunner;
use warpweave_workloads::Scale;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let verify = !args.iter().any(|a| a == "--no-verify");
    let set = arg_value(&args, "--set").unwrap_or_else(|| "irregular".into());
    let checkpoint = arg_value(&args, "--checkpoint");
    let configs = grid::associativity_configs();
    let workloads = if set == "regular" {
        warpweave_workloads::regular()
    } else {
        warpweave_workloads::irregular()
    };
    let m = run_matrix_figure(
        &SweepRunner::new(),
        &configs,
        &workloads,
        Scale::Bench,
        verify,
        checkpoint.as_deref(),
    );
    println!("== Figure 9: SWI lookup associativity, slowdown vs fully-associative ({set}) ==");
    print!("{:<22}", "benchmark");
    for c in &m.configs {
        print!("{c:>18}");
    }
    println!();
    for w in 0..m.workloads.len() {
        print!("{:<22}", m.workloads[w]);
        for c in 0..m.configs.len() {
            print!("{:>18.3}", m.ipc(w, c) / m.ipc(w, 0));
        }
        println!();
    }
    let rows: Vec<usize> = (0..m.workloads.len())
        .filter(|&w| !m.workloads[w].starts_with("TMD"))
        .collect();
    print!("{:<22}", "Gmean (excl. TMD)");
    for c in 0..m.configs.len() {
        let g = gmean(rows.iter().map(|&w| m.ipc(w, c) / m.ipc(w, 0)));
        print!("{g:>18.3}");
    }
    println!();
    println!();
    print!("{}", format_bandwidth_summary(&m, &configs[0].dram, &rows));
    println!();
    println!("paper: even direct-mapped keeps ≥85% of fully-associative performance");
    println!("(≥96% on regular applications).");
}
