//! Regenerates **table 3**: the storage inventory of each technique.
fn main() {
    let p = warpweave_hwcost::HwParams::default();
    println!("{}", warpweave_hwcost::format_table3(&p));
}
