//! Regenerates **figure 2**: the contents of the execution pipeline when an
//! if-then-else block runs over 2 warps of 4 threads, under classic SIMT,
//! SBI (with and without reconvergence constraints), SWI, and SBI+SWI.
//!
//! Instruction numbering follows the paper: 1 = the divergent branch,
//! 2–4 = the `if` side, 5 = the `else` side, 6 = the reconverged tail.
//!
//! `--frontend NAMES` (comma-separated registry names) renders the
//! timeline under the named issue policies instead of the paper's five
//! variants — e.g. `--frontend Baseline,GreedyThenOldest` to compare
//! scheduling orders on the toy kernel.

use warpweave_bench::arg_value;
use warpweave_core::{render_timeline, Launch, Sm, SmConfig};
use warpweave_isa::{p, r, CmpOp, KernelBuilder, Program, SpecialReg};

/// The paper's toy kernel: `if (tid & 1) { i2; i3; i4 } else { i5 } i6`.
fn toy_program() -> Program {
    let mut k = KernelBuilder::new("fig2");
    k.and_(r(0), SpecialReg::Tid, 1i32); // i0: compute condition
    k.isetp(p(0), CmpOp::Eq, r(0), 0i32);
    k.bra_if(p(0), "else"); // i1: the divergent branch
    k.iadd(r(1), r(1), 1i32); // i2
    k.iadd(r(2), r(2), 1i32); // i3
    k.iadd(r(3), r(3), 1i32); // i4
    k.bra("join");
    k.label("else");
    k.iadd(r(4), r(4), 1i32); // i5
    k.label("join");
    k.iadd(r(5), r(5), 1i32); // i6 (after the SYNC marker)
    k.exit();
    k.build().expect("fig2 toy kernel assembles")
}

fn shrink(cfg: SmConfig, name: &str) -> SmConfig {
    let mut cfg = cfg.named(name);
    cfg.num_warps = 2;
    cfg.warp_width = 4;
    // Scale the back-end down with the warp so the picture stays readable.
    for g in &mut cfg.groups {
        g.width = g.width.min(4);
    }
    cfg
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if let Some(names) = arg_value(&args, "--frontend") {
        for name in names.split(',') {
            let cfg =
                SmConfig::with_policy(name.trim()).unwrap_or_else(|e| panic!("--frontend: {e}"));
            let label = cfg.name.clone();
            let cfg = shrink(cfg, &label);
            let launch = Launch::new(toy_program(), 2, 4);
            let mut sm = Sm::new(cfg, launch).expect("valid configuration");
            sm.enable_trace();
            sm.run(10_000).expect("toy kernel finishes");
            println!("== {label} ==");
            println!("{}", render_timeline(sm.trace_events(), 2, 4));
        }
        return;
    }
    let variants = vec![
        shrink(SmConfig::baseline(), "(a) SIMT baseline"),
        shrink(
            SmConfig::sbi().with_constraints(false),
            "(b) SBI, no constraints",
        ),
        shrink(
            SmConfig::sbi().with_constraints(true),
            "(c) SBI with reconvergence constraints",
        ),
        shrink(SmConfig::swi(), "(d) SWI"),
        shrink(SmConfig::sbi_swi(), "(e) SBI+SWI"),
    ];
    for mut cfg in variants {
        if cfg.name.contains("SIMT") {
            cfg.warp_width = 4;
        }
        let name = cfg.name.clone();
        let launch = Launch::new(toy_program(), 2, 4);
        let mut sm = Sm::new(cfg, launch).expect("valid configuration");
        sm.enable_trace();
        sm.run(10_000).expect("toy kernel finishes");
        println!("== {name} ==");
        println!("(cells show the issued PC per thread; '.' = lane idle)\n");
        println!("{}", render_timeline(sm.trace_events(), 2, 4));
        println!(
            "cycles: {}  thread-instructions: {}  IPC: {:.2}\n",
            sm.stats().cycles,
            sm.stats().thread_instructions,
            sm.stats().ipc()
        );
    }
}
