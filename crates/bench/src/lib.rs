//! # warpweave-bench
//!
//! The experiment harness regenerating every table and figure of the paper's
//! evaluation (§5). One binary per figure/table (see `src/bin/`), all built
//! on the [`harness`] run matrix.

pub mod grid;
pub mod harness;
pub mod report;
pub mod shard;

pub use harness::{
    cell_key, format_bandwidth_summary, format_bandwidth_table, format_failures, format_ipc_table,
    gmean, run_matrix, run_matrix_at, run_matrix_checkpointed, run_matrix_contained,
    run_matrix_figure, run_matrix_on, run_matrix_serial, run_matrix_serial_at, run_matrix_shard,
    run_one, run_one_at, try_run_one_at, CellFailure, CellResult, FaultPolicy, MatrixResult,
    SweepReport, BENCH_SEED,
};
pub use report::{
    check_golden, parse_golden_cells, probes_from_store, render_faulted_sweep_json,
    render_golden_json, render_sweep_json, run_machine_probes, run_machine_probes_selected,
    run_probe, GoldenCell, ProbeResult, FAULTED_SWEEP_SCHEMA, GOLDEN_SCHEMA, SWEEP_SCHEMA,
};
pub use shard::{job_counts, matrix_from_store, merge_checkpoints, split_jobs, ShardSpec};

/// Returns the value following `flag` in an argument list — the one
/// CLI-parsing helper every bench binary shares (`--flag VALUE` style).
/// `None` when the flag is absent or is the last argument.
pub fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}
