//! # warpweave-bench
//!
//! The experiment harness regenerating every table and figure of the paper's
//! evaluation (§5). One binary per figure/table (see `src/bin/`), all built
//! on the [`harness`] run matrix.

pub mod harness;

pub use harness::{
    format_bandwidth_summary, format_bandwidth_table, format_ipc_table, gmean, run_matrix,
    run_matrix_at, run_matrix_on, run_matrix_serial, run_matrix_serial_at, run_one, run_one_at,
    CellResult, MatrixResult, BENCH_SEED,
};
