//! # warpweave-bench
//!
//! The experiment harness regenerating every table and figure of the paper's
//! evaluation (§5). One binary per figure/table (see `src/bin/`), all built
//! on the [`harness`] run matrix.

pub mod harness;

pub use harness::{
    gmean, run_matrix, run_one, CellResult, MatrixResult, BENCH_SEED,
};
