//! The canonical sweep grids: every configuration set the figures, the
//! golden baseline and the cross-cutting tests run on, defined **once**.
//!
//! Before this module each figure binary and each integration test derived
//! its own config list, so the committed golden baseline and the test
//! matrix could silently diverge (a renamed config or a tweaked preset
//! would update one but not the other). Everything that enumerates
//! `workload × config` cells — `bench_sweep`, the four figure binaries,
//! `tests/workload_matrix.rs`, `tests/differential.rs`, the golden checker
//! — now pulls its grid from here, and [`grid_id`] digests the grid into
//! the identity a [`SweepCheckpoint`](warpweave_core::SweepCheckpoint)
//! binds to.

use warpweave_core::checkpoint::CHECKPOINT_VERSION;
use warpweave_core::digest::fnv1a;
use warpweave_core::{Associativity, LaneShuffle, SmConfig};
use warpweave_mem::CacheConfig;
use warpweave_workloads::{all_workloads, by_name, Scale, Workload};

/// The fig. 7 front-end set — the columns of the sweep and of the golden
/// baseline's single-SM grid. Constructed through the policy registry
/// ([`SmConfig::with_policy`]), so the golden baseline exercises the
/// registry path end to end; `registry_path_matches_constructors` below
/// pins it equal to [`SmConfig::figure7_set`].
pub fn figure7_configs() -> Vec<SmConfig> {
    ["Baseline", "SBI", "SWI", "SBI+SWI", "Warp64"]
        .iter()
        .map(|n| SmConfig::with_policy(n).expect("figure-7 policy registered"))
        .collect()
}

/// Resolves a `--frontend` CLI value to its registry preset, with a
/// CLI-friendly error.
///
/// # Errors
/// Unknown policy names (the message lists what is registered).
pub fn frontend_config(name: &str) -> Result<SmConfig, String> {
    SmConfig::with_policy(name)
}

/// The fig. 8(a) constraint study: SBI and SBI+SWI, constraints off/on.
pub fn constraint_configs() -> Vec<SmConfig> {
    vec![
        SmConfig::sbi().with_constraints(false).named("SBI/off"),
        SmConfig::sbi().with_constraints(true).named("SBI/on"),
        SmConfig::sbi_swi()
            .with_constraints(false)
            .named("Both/off"),
        SmConfig::sbi_swi().with_constraints(true).named("Both/on"),
    ]
}

/// The fig. 8(b) lane-shuffling study: SWI under every table-1 policy.
pub fn lane_shuffle_configs() -> Vec<SmConfig> {
    LaneShuffle::ALL
        .iter()
        .map(|&s| SmConfig::swi().with_lane_shuffle(s).named(s.name()))
        .collect()
}

/// The fig. 9 associativity study: SWI lookup points on a 24-warp pool.
pub fn associativity_configs() -> Vec<SmConfig> {
    [
        Associativity::Full,
        Associativity::Ways(11),
        Associativity::Ways(3),
        Associativity::Ways(1),
    ]
    .iter()
    .map(|&a| SmConfig::swi().with_warps(24).with_assoc(a).named(a.name()))
    .collect()
}

/// The non-baseline front-ends the differential fuzzer must prove
/// bit-identical to the baseline (every fig. 7 column plus the
/// constraints-off SBI variant that exercises desynchronised scheduling).
pub fn differential_configs() -> Vec<SmConfig> {
    vec![
        SmConfig::warp64(),
        SmConfig::sbi(),
        SmConfig::sbi()
            .with_constraints(false)
            .named("SBI/unconstrained"),
        SmConfig::swi(),
        SmConfig::sbi_swi(),
    ]
}

/// The quick-mode sweep workloads (one regular, one irregular).
pub fn quick_workloads() -> Vec<Box<dyn Workload>> {
    ["MatrixMul", "SortingNetworks"]
        .iter()
        .map(|n| by_name(n).expect("registered workload"))
        .collect()
}

/// The sweep's workload rows: all 21 under `--full`, the quick pair
/// otherwise.
pub fn sweep_workloads(full: bool) -> Vec<Box<dyn Workload>> {
    if full {
        all_workloads()
    } else {
        quick_workloads()
    }
}

/// One multi-SM machine probe of the sweep: a workload simulated on a
/// [`Machine`](warpweave_core::Machine) under a bandwidth model.
#[derive(Debug, Clone)]
pub struct MachineProbe {
    /// Workload label (resolved through the registry).
    pub workload: &'static str,
    /// SM count of the machine.
    pub num_sms: usize,
    /// Full SM configuration (carries the [`warpweave_core::MemModel`]).
    pub cfg: SmConfig,
}

impl MachineProbe {
    /// The probe's checkpoint/golden cell key, e.g.
    /// `machine/Mandelbrot/4sm/shared`. Non-default memory-hierarchy
    /// knobs are appended as suffixes (`+2ch`, `+mshr32`, `+l2`) so every
    /// probe of the grid keys a distinct golden cell; default-knob probes
    /// keep their historical keys.
    pub fn key(&self) -> String {
        let mut key = format!(
            "machine/{}/{}sm/{}",
            self.workload,
            self.num_sms,
            self.cfg.mem_model.name()
        );
        if self.cfg.dram.num_channels > 1 {
            key.push_str(&format!("+{}ch", self.cfg.dram.num_channels));
        }
        if self.cfg.mshr_entries > 0 {
            key.push_str(&format!("+mshr{}", self.cfg.mshr_entries));
        }
        if self.cfg.l2.is_some() {
            key.push_str("+l2");
        }
        key
    }
}

/// The canonical shared-L2 geometry of the probe grid: 256 K, 8-way,
/// 128 B lines, 20-cycle hit.
pub fn probe_l2() -> CacheConfig {
    CacheConfig {
        capacity_bytes: 256 * 1024,
        ways: 8,
        line_bytes: 128,
        hit_latency: 20,
    }
}

/// The machine probes of the sweep (and of the golden baseline): one
/// irregular workload at 1 and 4 SMs under **both** bandwidth models —
/// pinning private-channel and shared-channel behaviour alike — plus the
/// scaled memory hierarchy (a second interleaved channel, per-SM MSHRs,
/// and the shared L2 stacked together). The hierarchy probes run a
/// load-heavy workload with cross-SM reuse (MatrixMul) so the golden rows
/// actually exercise channel interleaving and L2 interception; Mandelbrot
/// is write-only off-chip and would pin all-zero load counters.
pub fn machine_probes() -> Vec<MachineProbe> {
    [
        ("Mandelbrot", 1usize, SmConfig::sbi_swi()),
        ("Mandelbrot", 4, SmConfig::sbi_swi()),
        ("Mandelbrot", 1, SmConfig::sbi_swi().with_shared_dram()),
        ("Mandelbrot", 4, SmConfig::sbi_swi().with_shared_dram()),
        (
            "MatrixMul",
            4,
            SmConfig::sbi_swi().with_shared_dram().with_dram_channels(2),
        ),
        (
            "MatrixMul",
            4,
            SmConfig::sbi_swi().with_shared_dram().with_mshrs(32),
        ),
        (
            "MatrixMul",
            4,
            SmConfig::sbi_swi()
                .with_shared_dram()
                .with_dram_channels(2)
                .with_mshrs(32)
                .with_l2(probe_l2()),
        ),
    ]
    .into_iter()
    .map(|(workload, num_sms, cfg)| MachineProbe {
        workload,
        num_sms,
        cfg,
    })
    .collect()
}

/// Digests a grid — config labels, workload labels, machine probes, scale
/// and the checkpoint format version — into the 64-bit identity a
/// checkpoint binds to. Any change to the grid definition changes the id,
/// so a stale checkpoint can never be resumed against a different sweep.
pub fn grid_id(configs: &[SmConfig], workloads: &[Box<dyn Workload>], scale: Scale) -> u64 {
    let mut text = format!("ckpt-v{CHECKPOINT_VERSION};scale={scale:?};");
    for c in configs {
        text.push_str(&c.name);
        text.push(';');
    }
    for w in workloads {
        text.push_str(w.name());
        text.push(';');
    }
    for p in machine_probes() {
        text.push_str(&p.key());
        text.push(';');
    }
    fnv1a(text.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_sets_validate() {
        for cfg in figure7_configs()
            .iter()
            .chain(&constraint_configs())
            .chain(&lane_shuffle_configs())
            .chain(&associativity_configs())
            .chain(&differential_configs())
        {
            cfg.validate()
                .unwrap_or_else(|e| panic!("{}: {e}", cfg.name));
        }
        for p in machine_probes() {
            p.cfg.validate().unwrap();
            assert!(by_name(p.workload).is_some(), "{} unregistered", p.workload);
        }
    }

    #[test]
    fn probe_keys_are_distinct_and_suffix_the_hierarchy_knobs() {
        let keys: Vec<String> = machine_probes().iter().map(MachineProbe::key).collect();
        let mut deduped = keys.clone();
        deduped.sort();
        deduped.dedup();
        assert_eq!(deduped.len(), keys.len(), "duplicate probe keys: {keys:?}");
        // Historical default-knob keys must not move (golden continuity).
        assert!(keys.contains(&"machine/Mandelbrot/4sm/shared".to_string()));
        // The scaled-hierarchy probes encode their knobs.
        assert!(keys.contains(&"machine/MatrixMul/4sm/shared+2ch".to_string()));
        assert!(keys.contains(&"machine/MatrixMul/4sm/shared+mshr32".to_string()));
        assert!(keys.contains(&"machine/MatrixMul/4sm/shared+2ch+mshr32+l2".to_string()));
    }

    #[test]
    fn registry_path_matches_constructors() {
        // The registry-constructed fig. 7 grid must be the constructor
        // grid — same labels in the same order (the golden baseline's
        // cell keys depend on it).
        let via_registry: Vec<String> = figure7_configs().iter().map(|c| c.name.clone()).collect();
        let via_ctor: Vec<String> = SmConfig::figure7_set()
            .iter()
            .map(|c| c.name.clone())
            .collect();
        assert_eq!(via_registry, via_ctor);
        assert!(frontend_config("GreedyThenOldest").is_ok());
        assert!(frontend_config("gto").is_ok());
        assert!(frontend_config("bogus").is_err());
    }

    #[test]
    fn grid_id_tracks_every_dimension() {
        let configs = figure7_configs();
        let quick = quick_workloads();
        let base = grid_id(&configs, &quick, Scale::Test);
        assert_ne!(base, grid_id(&configs, &quick, Scale::Bench), "scale");
        assert_ne!(
            base,
            grid_id(&configs[..4], &quick, Scale::Test),
            "config set"
        );
        assert_ne!(
            base,
            grid_id(&configs, &sweep_workloads(true), Scale::Test),
            "workload set"
        );
        // Stable across calls (pure function of the definition).
        assert_eq!(base, grid_id(&configs, &quick, Scale::Test));
    }
}
