//! Sharded sweeps and shard-checkpoint merging — the single-host half of
//! the distributed sweep fabric.
//!
//! A sweep grid is embarrassingly parallel: every cell is a pure function
//! of `(workload, config, seed, scale)`, so the grid can be cut into
//! arbitrary slices, each slice run on a different host into an ordinary
//! [`SweepCheckpoint`] file, and the files merged back into the exact
//! payload a single host would have produced. Three pieces make that safe:
//!
//! * **One canonical job numbering** ([`job_counts`]): the full job grid is
//!   the workload-major matrix cells (`0 .. W×C`) followed by the machine
//!   probes (`W×C .. W×C+P`). Shard specs, fault-injection rules and the
//!   merge completeness check all index this same list, so `shard:2/8`
//!   means the same jobs on every host and across resumes.
//! * **Grid-bound shards**: every shard checkpoint carries the same grid
//!   id a single-host checkpoint would; [`merge_checkpoints`] refuses a
//!   shard from a different grid (or a torn/corrupt file) instead of
//!   silently unioning garbage.
//! * **Order-free union**: cells live in the checkpoint's sorted map, so
//!   the merged store — and the JSON rendered from it — is independent of
//!   how the grid was partitioned, which shard finished first, or whether
//!   shards overlapped (overlapping cells must be bit-identical, and are,
//!   because cells are pure functions; a conflicting duplicate is refused
//!   as corruption).

use std::collections::BTreeSet;

use warpweave_core::checkpoint::{CellRecord, SweepCheckpoint};
use warpweave_core::SmConfig;
use warpweave_workloads::Workload;

use crate::grid::machine_probes;
use crate::harness::{cell_key, CellResult, MatrixResult};

/// Which slice of the full job grid a `--jobs-from` run executes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardSpec {
    /// `shard:K/N` — the K-th of N round-robin slices (0-based): job `i`
    /// belongs to the shard with `i % N == K`. Round-robin (rather than
    /// contiguous blocks) spreads the expensive workload rows evenly
    /// across hosts.
    RoundRobin {
        /// Slice index, `0 <= index < count`.
        index: usize,
        /// Total slice count.
        count: usize,
    },
    /// `cells:LIST` — an explicit job-index list (`3,7,10-14` style, both
    /// single indices and inclusive ranges), deduplicated and sorted.
    Cells(Vec<usize>),
}

impl ShardSpec {
    /// Parses a `--jobs-from` spec: `shard:K/N` or `cells:3,7,10-14`.
    ///
    /// # Errors
    /// A one-line description of the first grammar or range defect.
    pub fn parse(spec: &str) -> Result<ShardSpec, String> {
        if let Some(rest) = spec.strip_prefix("shard:") {
            let (k, n) = rest
                .split_once('/')
                .ok_or_else(|| format!("`{spec}`: expected shard:K/N"))?;
            let index: usize = k
                .parse()
                .map_err(|_| format!("`{spec}`: shard index `{k}` is not a number"))?;
            let count: usize = n
                .parse()
                .map_err(|_| format!("`{spec}`: shard count `{n}` is not a number"))?;
            if count == 0 {
                return Err(format!("`{spec}`: shard count must be at least 1"));
            }
            if index >= count {
                return Err(format!(
                    "`{spec}`: shard index {index} out of range (0..{count})"
                ));
            }
            return Ok(ShardSpec::RoundRobin { index, count });
        }
        if let Some(rest) = spec.strip_prefix("cells:") {
            let mut cells = BTreeSet::new();
            for part in rest.split(',') {
                let part = part.trim();
                if part.is_empty() {
                    return Err(format!("`{spec}`: empty cell-index entry"));
                }
                let (lo, hi) = match part.split_once('-') {
                    Some((a, b)) => (a, b),
                    None => (part, part),
                };
                let lo: usize = lo
                    .parse()
                    .map_err(|_| format!("`{spec}`: `{part}` is not an index or range"))?;
                let hi: usize = hi
                    .parse()
                    .map_err(|_| format!("`{spec}`: `{part}` is not an index or range"))?;
                if hi < lo {
                    return Err(format!("`{spec}`: range `{part}` runs backwards"));
                }
                cells.extend(lo..=hi);
            }
            return Ok(ShardSpec::Cells(cells.into_iter().collect()));
        }
        Err(format!(
            "`{spec}`: expected `shard:K/N` or `cells:3,7,10-14`"
        ))
    }

    /// The job indices this spec selects out of a grid of `total` jobs,
    /// sorted ascending.
    ///
    /// # Errors
    /// An explicit cell index past the end of the grid (a round-robin
    /// shard can never be out of range — it may just be empty).
    pub fn select(&self, total: usize) -> Result<Vec<usize>, String> {
        match self {
            ShardSpec::RoundRobin { index, count } => Ok((*index..total).step_by(*count).collect()),
            ShardSpec::Cells(cells) => {
                if let Some(&bad) = cells.iter().find(|&&c| c >= total) {
                    return Err(format!(
                        "cell index {bad} out of range (the grid has {total} jobs: \
                         matrix cells then machine probes)"
                    ));
                }
                Ok(cells.clone())
            }
        }
    }
}

impl std::fmt::Display for ShardSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardSpec::RoundRobin { index, count } => write!(f, "shard:{index}/{count}"),
            ShardSpec::Cells(cells) => {
                write!(f, "cells:")?;
                for (i, c) in cells.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{c}")?;
                }
                Ok(())
            }
        }
    }
}

/// `(matrix_cells, machine_probes)` — the two segments of the full job
/// grid, in canonical order: workload-major matrix cells first, then the
/// machine probes of [`machine_probes`].
pub fn job_counts(configs: &[SmConfig], workloads: &[Box<dyn Workload>]) -> (usize, usize) {
    (configs.len() * workloads.len(), machine_probes().len())
}

/// Splits sorted full-grid job indices into `(matrix_cell_indices,
/// probe_indices)` — probe indices re-based to `0..P`.
pub fn split_jobs(indices: &[usize], matrix_cells: usize) -> (Vec<usize>, Vec<usize>) {
    let cells = indices
        .iter()
        .copied()
        .filter(|&i| i < matrix_cells)
        .collect();
    let probes = indices
        .iter()
        .copied()
        .filter(|&i| i >= matrix_cells)
        .map(|i| i - matrix_cells)
        .collect();
    (cells, probes)
}

/// Merges shard checkpoint files into one in-memory union store bound to
/// `expected_grid`.
///
/// Every input must be an intact checkpoint of the **same grid** (same
/// format version, same grid id); a cell recorded by several shards must
/// be bit-identical everywhere it appears. Violations are refused with a
/// one-line message naming the offending file — merging is a validation
/// step, never a repair step (use `--salvage` on the damaged shard first).
///
/// # Errors
/// Torn/corrupt/mis-versioned files, grid-id mismatches, or conflicting
/// duplicate cells.
pub fn merge_checkpoints(paths: &[String], expected_grid: u64) -> Result<SweepCheckpoint, String> {
    if paths.is_empty() {
        return Err("--merge needs at least one shard checkpoint file".into());
    }
    let mut union = SweepCheckpoint::in_memory(expected_grid);
    for path in paths {
        let shard = SweepCheckpoint::load(path).map_err(|e| format!("{path}: {e}"))?;
        if shard.grid_id() != expected_grid {
            return Err(format!(
                "{path}: shard belongs to grid {:016x}, this sweep is grid \
                 {expected_grid:016x} (different --full/--frontend flags, or a \
                 stale file?)",
                shard.grid_id()
            ));
        }
        for key in shard.keys().map(str::to_string).collect::<Vec<_>>() {
            let record = shard.get(&key).expect("key just listed").clone();
            match union.get(&key) {
                Some(existing) if *existing == record => {} // overlapping shards agree
                Some(_) => {
                    return Err(format!(
                        "{path}: cell `{key}` conflicts with an earlier shard's \
                         record — cells are pure functions, so disagreeing shards \
                         mean corruption or mismatched builds"
                    ));
                }
                None => union
                    .record(&key, record)
                    .map_err(|e| format!("{path}: union of cell `{key}`: {e}"))?,
            }
        }
    }
    Ok(union)
}

/// Assembles the full [`MatrixResult`] from a (merged) store.
///
/// # Errors
/// The sorted list of missing cell keys, when the union does not cover
/// the whole matrix.
pub fn matrix_from_store(
    configs: &[SmConfig],
    workloads: &[Box<dyn Workload>],
    store: &SweepCheckpoint,
) -> Result<MatrixResult, Vec<String>> {
    let mut cells: Vec<Vec<CellResult>> = Vec::with_capacity(workloads.len());
    let mut missing = Vec::new();
    for w in workloads {
        let mut row = Vec::with_capacity(configs.len());
        for c in configs {
            let key = cell_key(w.name(), &c.name);
            match store.get(&key) {
                Some(record) => row.push(CellResult {
                    workload: w.name().to_string(),
                    config: c.name.clone(),
                    stats: record.stats.clone(),
                }),
                None => missing.push(key),
            }
        }
        cells.push(row);
    }
    if !missing.is_empty() {
        return Err(missing);
    }
    Ok(MatrixResult {
        configs: configs.iter().map(|c| c.name.clone()).collect(),
        workloads: workloads.iter().map(|w| w.name().to_string()).collect(),
        cells,
    })
}

/// Copies `record` under `key` into `store` (test helper for synthesizing
/// shard files from already-simulated cells; the production shard path
/// records through the contained runner).
///
/// # Errors
/// As [`SweepCheckpoint::record`].
pub fn record_into(
    store: &mut SweepCheckpoint,
    key: &str,
    record: CellRecord,
) -> Result<(), String> {
    store.record(key, record).map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_spec_round_robin_parses_and_selects() {
        let spec = ShardSpec::parse("shard:2/3").unwrap();
        assert_eq!(spec, ShardSpec::RoundRobin { index: 2, count: 3 });
        assert_eq!(spec.select(8).unwrap(), vec![2, 5]);
        assert_eq!(spec.to_string(), "shard:2/3");
        // An empty slice is legal (more shards than jobs).
        assert_eq!(
            ShardSpec::parse("shard:7/9").unwrap().select(3).unwrap(),
            Vec::<usize>::new()
        );
    }

    #[test]
    fn round_robin_shards_partition_the_grid_exactly() {
        for n in 1..6usize {
            let mut seen = Vec::new();
            for k in 0..n {
                seen.extend(
                    ShardSpec::RoundRobin { index: k, count: n }
                        .select(17)
                        .unwrap(),
                );
            }
            seen.sort_unstable();
            assert_eq!(seen, (0..17).collect::<Vec<_>>(), "{n} shards");
        }
    }

    #[test]
    fn shard_spec_cell_lists_parse_ranges_and_dedupe() {
        let spec = ShardSpec::parse("cells:7,3,10-12,7").unwrap();
        assert_eq!(spec, ShardSpec::Cells(vec![3, 7, 10, 11, 12]));
        assert_eq!(spec.select(13).unwrap(), vec![3, 7, 10, 11, 12]);
        assert!(spec.select(12).unwrap_err().contains("out of range"));
    }

    #[test]
    fn shard_spec_rejects_bad_grammar() {
        for bad in [
            "shard:3/3",
            "shard:0/0",
            "shard:1",
            "shard:a/2",
            "cells:",
            "cells:5-3",
            "cells:x",
            "block:1/2",
            "",
        ] {
            assert!(ShardSpec::parse(bad).is_err(), "`{bad}` must be rejected");
        }
    }

    #[test]
    fn split_jobs_rebases_probe_indices() {
        let (cells, probes) = split_jobs(&[0, 3, 9, 10, 12], 10);
        assert_eq!(cells, vec![0, 3, 9]);
        assert_eq!(probes, vec![0, 2]);
    }
}
