//! Deterministic sweep reports: the `BENCH_sweep.json` payload, the
//! machine-probe runner, and the golden-baseline record/check machinery.
//!
//! # Determinism contract
//!
//! Everything rendered here is a pure function of simulation results —
//! **no wall-clock timings, host thread counts or absolute paths** ever
//! enter the JSON (they go to stderr instead). That is what lets the
//! acceptance tests demand *byte identity*: an interrupted-and-resumed
//! sweep must render exactly the bytes an uninterrupted run renders, and
//! the golden checker diffs rendered baselines **with a tolerance of
//! exactly zero**. The engine is bit-deterministic, so any drift — a
//! single IPC digit, one stall cycle — is a real behaviour change that
//! must be acknowledged by re-recording the baseline.

use warpweave_core::checkpoint::{CellRecord, CheckpointError, SweepCheckpoint};
use warpweave_core::Stats;
use warpweave_mem::ChannelStats;
use warpweave_workloads::{by_name, run_prepared_multi_sm, Scale};

use crate::grid::{machine_probes, MachineProbe};
use crate::harness::{CellFailure, CellResult, MatrixResult};

/// Schema tag of the sweep payload.
pub const SWEEP_SCHEMA: &str = "warpweave-bench-sweep-v3";
/// Schema tag of the partial payload a faulted sweep emits.
pub const FAULTED_SWEEP_SCHEMA: &str = "warpweave-bench-sweep-faulted-v1";
/// Schema tag of the golden baseline.
pub const GOLDEN_SCHEMA: &str = "warpweave-bench-golden-v1";

/// Escapes a string for a JSON literal.
pub fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
        .replace('\r', "\\r")
        .replace('\t', "\\t")
}

/// The measured outcome of one [`MachineProbe`].
#[derive(Debug, Clone)]
pub struct ProbeResult {
    /// The probe definition this result belongs to.
    pub probe: MachineProbe,
    /// Machine-total counters (`cycles` = makespan).
    pub total: Stats,
    /// Shared-channel counters (all-zero under the private model).
    pub channel: ChannelStats,
}

impl ProbeResult {
    /// Whole-machine IPC over the makespan.
    pub fn ipc(&self) -> f64 {
        self.total.ipc()
    }

    /// Shared-channel bandwidth saturation over the makespan, against the
    /// machine's **aggregate** byte budget (`num_channels` interleaved
    /// channels each carry a full `bytes_per_cycle`).
    pub fn channel_utilization(&self) -> f64 {
        let budget = self.probe.cfg.dram.bytes_per_cycle
            * f64::from(self.probe.cfg.dram.num_channels.max(1));
        self.channel.utilization(self.total.cycles, budget)
    }
}

/// Runs (or resumes from `store`) every machine probe of the sweep grid at
/// `scale`. Completed probes are appended to the checkpoint like matrix
/// cells, so an interrupted `--full` sweep does not redo them either.
///
/// # Errors
/// Checkpoint recording failures.
///
/// # Panics
/// Simulation failures — a sweep with a broken probe has no value.
pub fn run_machine_probes(
    scale: Scale,
    store: Option<&mut SweepCheckpoint>,
) -> Result<Vec<ProbeResult>, CheckpointError> {
    let all: Vec<usize> = (0..machine_probes().len()).collect();
    run_machine_probes_selected(scale, store, &all)
}

/// [`run_machine_probes`] restricted to the probes at the given indices
/// of the [`machine_probes`] list — the probe half of a sharded
/// (`--jobs-from`) sweep, where each host runs only its slice of the job
/// grid. Results come back in probe order, selected probes only.
///
/// # Errors
/// Checkpoint recording failures.
///
/// # Panics
/// Simulation failures, as in [`run_machine_probes`].
pub fn run_machine_probes_selected(
    scale: Scale,
    mut store: Option<&mut SweepCheckpoint>,
    selected: &[usize],
) -> Result<Vec<ProbeResult>, CheckpointError> {
    let mut results = Vec::new();
    for (idx, probe) in machine_probes().into_iter().enumerate() {
        if !selected.contains(&idx) {
            continue;
        }
        let key = probe.key();
        if let Some(record) = store.as_ref().and_then(|s| s.get(&key)) {
            results.push(ProbeResult {
                probe,
                total: record.stats.clone(),
                channel: record.channel.unwrap_or_default(),
            });
            continue;
        }
        let record =
            run_probe(&probe, scale).unwrap_or_else(|e| panic!("machine probe {key}: {e}"));
        if let Some(s) = store.as_deref_mut() {
            s.record(&key, record.clone())?;
        }
        results.push(ProbeResult {
            probe,
            total: record.stats,
            channel: record.channel.unwrap_or_default(),
        });
    }
    Ok(results)
}

/// Simulates one machine probe at `scale`, returning the checkpoint
/// record (machine-total counters plus shared-channel counters) the
/// sweep would persist for it. This is the single-probe cell body the
/// sweep service queues alongside matrix cells.
///
/// # Errors
/// The rendered simulation failure.
pub fn run_probe(probe: &MachineProbe, scale: Scale) -> Result<CellRecord, String> {
    let workload = by_name(probe.workload)
        .ok_or_else(|| format!("machine-probe workload `{}` unregistered", probe.workload))?;
    let stats = run_prepared_multi_sm(&probe.cfg, probe.num_sms, workload.prepare(scale), false)
        .map_err(|e| e.to_string())?;
    Ok(CellRecord::with_channel(stats.total, stats.channel))
}

/// Assembles every machine probe purely from a (merged) store — the
/// probe half of `bench_sweep --merge`, which must never re-simulate
/// anything: a merge is a validation-and-union step over already-run
/// shards.
///
/// # Errors
/// The sorted list of missing probe keys, when the union does not cover
/// the whole probe set.
pub fn probes_from_store(store: &SweepCheckpoint) -> Result<Vec<ProbeResult>, Vec<String>> {
    let mut results = Vec::new();
    let mut missing = Vec::new();
    for probe in machine_probes() {
        let key = probe.key();
        match store.get(&key) {
            Some(record) => results.push(ProbeResult {
                probe,
                total: record.stats.clone(),
                channel: record.channel.unwrap_or_default(),
            }),
            None => missing.push(key),
        }
    }
    if !missing.is_empty() {
        return Err(missing);
    }
    Ok(results)
}

/// Renders the deterministic `BENCH_sweep.json` payload: schema, per-cell
/// IPC grid, machine probes, the shared-channel contention block and the
/// per-config geometric means. Byte-for-byte reproducible for a given
/// grid — see the module docs.
pub fn render_sweep_json(scale: &str, m: &MatrixResult, probes: &[ProbeResult]) -> String {
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!("  \"schema\": \"{SWEEP_SCHEMA}\",\n"));
    json.push_str(&format!("  \"scale\": \"{scale}\",\n"));
    json.push_str(&format!(
        "  \"jobs\": {},\n",
        m.configs.len() * m.workloads.len()
    ));

    // Per-cell IPC grid: one line per cell, workload-major.
    json.push_str("  \"cells\": [\n");
    let mut cell_lines = Vec::new();
    for (w, workload) in m.workloads.iter().enumerate() {
        for (c, config) in m.configs.iter().enumerate() {
            cell_lines.push(render_sweep_cell(workload, config, &m.cells[w][c].stats));
        }
    }
    json.push_str(&cell_lines.join(",\n"));
    json.push_str("\n  ],\n");

    json.push_str("  \"machine_probe\": [\n");
    let probe_lines: Vec<String> = probes
        .iter()
        .map(|p| {
            format!(
                "    {{\"key\": \"{}\", \"num_sms\": {}, \"mem_model\": \"{}\", \
                 \"makespan_cycles\": {}, \"ipc\": {:.4}, \"channel_utilization\": {:.4}}}",
                json_escape(&p.probe.key()),
                p.probe.num_sms,
                p.probe.cfg.mem_model.name(),
                p.total.cycles,
                p.ipc(),
                p.channel_utilization()
            )
        })
        .collect();
    json.push_str(&probe_lines.join(",\n"));
    json.push_str("\n  ],\n");

    // Contention profile of the widest plain shared-bandwidth probe
    // (default hierarchy knobs — the suffixed probes have their own
    // machine_probe lines and golden cells).
    if let Some(shared) = probes
        .iter()
        .filter(|p| p.probe.key().ends_with("/shared"))
        .max_by_key(|p| p.probe.num_sms)
    {
        let ch = &shared.channel;
        json.push_str("  \"shared_channel\": {\n");
        json.push_str(&format!(
            "    \"utilization\": {:.4},\n",
            shared.channel_utilization()
        ));
        json.push_str(&format!(
            "    \"avg_queue_delay_cycles\": {:.4},\n",
            ch.avg_queue_delay()
        ));
        json.push_str(&format!(
            "    \"max_queue_delay_cycles\": {},\n",
            ch.max_queue_delay
        ));
        json.push_str(&format!(
            "    \"queued_requests\": {},\n",
            ch.queued_requests
        ));
        json.push_str(&format!("    \"read_transfers\": {},\n", ch.read_transfers));
        json.push_str(&format!(
            "    \"write_transfers\": {}\n",
            ch.write_transfers
        ));
        json.push_str("  },\n");
    }

    json.push_str("  \"gmean_ipc_per_config\": {\n");
    let rows: Vec<usize> = (0..m.workloads.len())
        .filter(|&w| !m.workloads[w].starts_with("TMD"))
        .collect();
    let gmeans = m.gmean_ipc(&rows);
    let entries: Vec<String> = m
        .configs
        .iter()
        .zip(&gmeans)
        .map(|(c, g)| format!("    \"{}\": {g:.4}", json_escape(c)))
        .collect();
    json.push_str(&entries.join(",\n"));
    json.push_str("\n  }\n}\n");
    json
}

/// Renders one sweep cell line — shared by the clean and faulted sweep
/// renderers, so a faulted run's healthy cells are **byte-identical** to
/// the same cells in a clean run's payload.
fn render_sweep_cell(workload: &str, config: &str, stats: &Stats) -> String {
    format!(
        "    {{\"workload\": \"{}\", \"config\": \"{}\", \"ipc\": {:.4}, \
         \"cycles\": {}, \"thread_instructions\": {}}}",
        json_escape(workload),
        json_escape(config),
        stats.ipc(),
        stats.cycles,
        stats.thread_instructions
    )
}

/// Renders the partial payload of a sweep with quarantined cells: every
/// healthy cell (byte-identical to its line in a clean run's
/// [`render_sweep_json`] payload — both go through the same cell-line
/// renderer) plus a `failures` block carrying the full provenance of
/// each quarantined cell. No gmean or probe blocks: a partial aggregate
/// would silently misrepresent the grid.
pub fn render_faulted_sweep_json(
    scale: &str,
    jobs: usize,
    healthy: &[CellResult],
    failures: &[CellFailure],
) -> String {
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!("  \"schema\": \"{FAULTED_SWEEP_SCHEMA}\",\n"));
    json.push_str(&format!("  \"scale\": \"{scale}\",\n"));
    json.push_str(&format!("  \"jobs\": {jobs},\n"));
    json.push_str(&format!("  \"healthy\": {},\n", healthy.len()));
    json.push_str(&format!("  \"quarantined\": {},\n", failures.len()));
    json.push_str("  \"cells\": [\n");
    let cell_lines: Vec<String> = healthy
        .iter()
        .map(|cell| render_sweep_cell(&cell.workload, &cell.config, &cell.stats))
        .collect();
    json.push_str(&cell_lines.join(",\n"));
    json.push_str("\n  ],\n");
    json.push_str("  \"failures\": [\n");
    let failure_lines: Vec<String> = failures
        .iter()
        .map(|f| {
            format!(
                "    {{\"workload\": \"{}\", \"config\": \"{}\", \"seed\": \"{:#x}\", \
                 \"attempts\": {}, \"reason\": \"{}\"}}",
                json_escape(&f.workload),
                json_escape(&f.config),
                f.seed,
                f.attempts,
                json_escape(&f.reason.to_string())
            )
        })
        .collect();
    json.push_str(&failure_lines.join(",\n"));
    json.push_str("\n  ]\n}\n");
    json
}

/// Renders one golden cell line: the key, the headline IPC and **every**
/// integer counter of the cell (the full stall breakdown, cache, DRAM and
/// — for probes — channel counters). One cell per line, so a golden diff
/// names the drifted cell precisely.
fn render_golden_cell(key: &str, stats: &Stats, channel: Option<&ChannelStats>) -> String {
    let counters: Vec<String> = stats
        .to_fields()
        .iter()
        .map(|(name, value)| format!("\"{name}\": {value}"))
        .collect();
    let mut line = format!(
        "    {{\"key\": \"{}\", \"ipc\": {:.4}, \"counters\": {{{}}}",
        json_escape(key),
        stats.ipc(),
        counters.join(", ")
    );
    if let Some(ch) = channel {
        let fields: Vec<String> = ch
            .to_fields()
            .iter()
            .map(|(name, value)| format!("\"{name}\": {value}"))
            .collect();
        line.push_str(&format!(", \"channel\": {{{}}}", fields.join(", ")));
    }
    line.push('}');
    line
}

/// Renders the golden baseline: every matrix cell and machine probe with
/// its full counter set, one cell per line. Committed as
/// `BENCH_golden.json` and diffed byte-for-byte by [`check_golden`].
pub fn render_golden_json(
    scale: &str,
    grid_id: u64,
    m: &MatrixResult,
    probes: &[ProbeResult],
) -> String {
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!("  \"schema\": \"{GOLDEN_SCHEMA}\",\n"));
    json.push_str(&format!(
        "  \"checkpoint_version\": {},\n",
        warpweave_core::CHECKPOINT_VERSION
    ));
    json.push_str(&format!("  \"scale\": \"{scale}\",\n"));
    json.push_str(&format!("  \"grid\": \"{grid_id:016x}\",\n"));
    json.push_str("  \"cells\": [\n");
    let mut lines = Vec::new();
    for (w, workload) in m.workloads.iter().enumerate() {
        for (c, config) in m.configs.iter().enumerate() {
            let key = crate::harness::cell_key(workload, config);
            lines.push(render_golden_cell(&key, &m.cells[w][c].stats, None));
        }
    }
    json.push_str(&lines.join(",\n"));
    json.push_str("\n  ],\n");
    json.push_str("  \"machine_probes\": [\n");
    let lines: Vec<String> = probes
        .iter()
        .map(|p| render_golden_cell(&p.probe.key(), &p.total, Some(&p.channel)))
        .collect();
    json.push_str(&lines.join(",\n"));
    json.push_str("\n  ]\n}\n");
    json
}

/// One cell pulled back out of a committed golden baseline: the key plus
/// the two headline counters every consumer cross-checks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GoldenCell {
    /// `workload/config` (or `machine/...` probe) key.
    pub key: String,
    /// Simulated cycles.
    pub cycles: u64,
    /// Thread-instructions committed.
    pub thread_instructions: u64,
}

/// Parses the committed golden baseline's cell lines back into
/// [`GoldenCell`]s. The renderer puts one cell per line with the fields
/// in a fixed order ([`render_golden_json`]), so a line scan is exact for
/// our own output — this is what `bench_hotpath`'s micro-assert and the
/// policy-equivalence test cross-check registry-built runs against.
pub fn parse_golden_cells(text: &str) -> Vec<GoldenCell> {
    fn field_u64(line: &str, key: &str) -> Option<u64> {
        let start = line.find(key)? + key.len();
        let tail = &line[start..];
        let num: String = tail.chars().take_while(char::is_ascii_digit).collect();
        num.parse().ok()
    }
    let mut out = Vec::new();
    for line in text.lines() {
        const KKEY: &str = "\"key\": \"";
        let Some(kstart) = line.find(KKEY) else {
            continue;
        };
        let rest = &line[kstart + KKEY.len()..];
        let Some(kend) = rest.find('"') else { continue };
        let (Some(cycles), Some(thread_instructions)) = (
            field_u64(line, "\"cycles\": "),
            field_u64(line, "\"thread_instructions\": "),
        ) else {
            continue;
        };
        out.push(GoldenCell {
            key: rest[..kend].to_string(),
            cycles,
            thread_instructions,
        });
    }
    out
}

/// Diffs a freshly rendered golden baseline against the committed one,
/// line by line, with a tolerance of exactly zero. Returns `Ok(())` on
/// byte identity; otherwise a human-readable report naming every drifted
/// line (`- committed` / `+ current`), which the CI job uploads as its
/// failure artifact.
///
/// # Errors
/// The diff report.
pub fn check_golden(committed: &str, current: &str) -> Result<(), String> {
    if committed == current {
        return Ok(());
    }
    let a: Vec<&str> = committed.lines().collect();
    let b: Vec<&str> = current.lines().collect();
    let mut report = String::from(
        "golden baseline drift (zero tolerance: the engine is bit-deterministic,\n\
         so any drift is a real behaviour change; re-record with --record-golden\n\
         if it is intentional):\n",
    );
    let mut drifted = 0usize;
    for i in 0..a.len().max(b.len()) {
        match (a.get(i), b.get(i)) {
            (Some(x), Some(y)) if x == y => {}
            (x, y) => {
                drifted += 1;
                if drifted <= 64 {
                    report.push_str(&format!("line {}:\n", i + 1));
                    if let Some(x) = x {
                        report.push_str(&format!("- {x}\n"));
                    }
                    if let Some(y) = y {
                        report.push_str(&format!("+ {y}\n"));
                    }
                }
            }
        }
    }
    if drifted > 64 {
        report.push_str(&format!("... and {} more drifted lines\n", drifted - 64));
    }
    report.push_str(&format!("{drifted} drifted line(s) in total\n"));
    Err(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_diff_names_the_drifted_line() {
        let a = "l1\nl2\nl3\n";
        assert!(check_golden(a, a).is_ok());
        let report = check_golden(a, "l1\nl2 drifted\nl3\n").unwrap_err();
        assert!(report.contains("line 2"), "{report}");
        assert!(report.contains("- l2"), "{report}");
        assert!(report.contains("+ l2 drifted"), "{report}");
        assert!(report.contains("1 drifted line(s)"), "{report}");
    }

    #[test]
    fn golden_diff_handles_length_mismatch() {
        let report = check_golden("a\nb\n", "a\n").unwrap_err();
        assert!(report.contains("- b"), "{report}");
    }

    #[test]
    fn golden_cell_lines_are_single_lines() {
        let line = render_golden_cell("w/c", &Stats::default(), Some(&ChannelStats::default()));
        assert!(!line.contains('\n'));
        assert!(line.contains("\"key\": \"w/c\""));
        assert!(line.contains("\"cycles\": 0"));
        assert!(line.contains("\"channel\""));
    }

    #[test]
    fn golden_cells_round_trip_through_the_parser() {
        let stats = Stats {
            cycles: 1234,
            thread_instructions: 56789,
            ..Stats::default()
        };
        let line = render_golden_cell("MatrixMul/SWI", &stats, None);
        let cells = parse_golden_cells(&line);
        assert_eq!(
            cells,
            vec![GoldenCell {
                key: "MatrixMul/SWI".into(),
                cycles: 1234,
                thread_instructions: 56789,
            }]
        );
    }
}
