//! Equivalence and determinism guarantees of the pluggable issue-policy
//! registry:
//!
//! * every registered policy name round-trips through config
//!   serialization — the preset's `policy` field resolves back to the
//!   same entry, and a sweep checkpoint keyed by each policy's config
//!   label resumes exactly;
//! * the five legacy `Frontend` configurations produce **bit-identical**
//!   statistics to the committed `BENCH_golden.json` when constructed via
//!   the new registry path (`SmConfig::with_policy`);
//! * the net-new `GreedyThenOldest` policy is selectable from the
//!   registry, differs from the baseline order, and is bit-identical
//!   across 1 and 8 host threads on a multi-SM machine.

use warpweave_bench::harness::{cell_key, run_one_at};
use warpweave_bench::parse_golden_cells;
use warpweave_core::checkpoint::{CellRecord, SweepCheckpoint};
use warpweave_core::{Launch, Machine, MachineStats, PolicyRegistry, SchedOrder, SmConfig};
use warpweave_isa::{p, r, CmpOp, KernelBuilder, Operand, Program, SpecialReg};
use warpweave_workloads::{by_name, Scale};

/// The committed golden baseline at the workspace root.
fn golden_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_golden.json")
}

#[test]
fn registry_names_round_trip_through_config_serialization() {
    let names = PolicyRegistry::global_names();
    assert!(
        names.contains(&"GreedyThenOldest"),
        "the net-new policy must be registered"
    );
    for name in &names {
        let cfg = SmConfig::with_policy(name).expect("registered name builds a preset");
        // The serialized face of a config's policy is its name: it must
        // resolve back to the same registry entry, and validate.
        let entry = PolicyRegistry::resolve_global(&cfg.policy)
            .unwrap_or_else(|| panic!("preset policy '{}' does not resolve", cfg.policy));
        assert_eq!(entry.name, *name);
        cfg.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
    }

    // And through the on-disk checkpoint format: one cell per policy,
    // keyed by the preset's config label, written and resumed exactly.
    let dir = std::env::temp_dir().join(format!("warpweave-policy-rt-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("policies.checkpoint");
    let path = path.to_str().expect("utf-8 temp path");
    let grid = 0x9e3779b97f4a7c15u64;
    {
        let mut store = SweepCheckpoint::resume(path, grid).expect("fresh checkpoint");
        for (i, name) in names.iter().enumerate() {
            let cfg = SmConfig::with_policy(name).expect("registered");
            let stats = warpweave_core::Stats {
                cycles: 100 + i as u64,
                ..Default::default()
            };
            store
                .record(&cell_key("RoundTrip", &cfg.name), CellRecord::new(stats))
                .expect("record");
        }
    }
    let store = SweepCheckpoint::resume(path, grid).expect("resume");
    for (i, name) in names.iter().enumerate() {
        let cfg = SmConfig::with_policy(name).expect("registered");
        let rec = store
            .get(&cell_key("RoundTrip", &cfg.name))
            .unwrap_or_else(|| panic!("{name}: cell lost in round trip"));
        assert_eq!(rec.stats.cycles, 100 + i as u64, "{name}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn legacy_frontends_match_golden_via_registry_path() {
    let text = std::fs::read_to_string(golden_path())
        .expect("committed BENCH_golden.json at the workspace root");
    let cells = parse_golden_cells(&text);
    assert!(!cells.is_empty(), "golden baseline parsed no cells");
    let mut checked = 0usize;
    for name in ["Baseline", "Warp64", "SBI", "SWI", "SBI+SWI"] {
        let cfg = SmConfig::with_policy(name).expect("registered");
        for workload in ["MatrixMul", "SortingNetworks"] {
            let key = cell_key(workload, &cfg.name);
            let golden = cells
                .iter()
                .find(|c| c.key == key)
                .unwrap_or_else(|| panic!("golden baseline has no cell '{key}'"));
            let cell = run_one_at(
                &cfg,
                by_name(workload).expect("registered workload").as_ref(),
                Scale::Test,
                false,
            );
            assert_eq!(
                (cell.stats.cycles, cell.stats.thread_instructions),
                (golden.cycles, golden.thread_instructions),
                "{key}: registry-constructed run drifted from BENCH_golden.json"
            );
            checked += 1;
        }
    }
    assert_eq!(checked, 10);
}

/// A divergent kernel with data-dependent trip counts (the
/// multi-SM-determinism workhorse): `out[gtid] = collatz_steps(gtid % 37)`.
fn collatz_program() -> Program {
    let mut k = KernelBuilder::new("collatz");
    k.mov(r(0), SpecialReg::CtaId);
    k.imad(r(0), r(0), SpecialReg::NTid, SpecialReg::Tid);
    k.mov(r(1), r(0));
    k.label("mod");
    k.isetp(p(0), CmpOp::Ge, r(1), 37i32);
    k.guard_t(p(0)).isub(r(1), r(1), 37i32);
    k.bra_if(p(0), "mod");
    k.iadd(r(1), r(1), 1i32);
    k.mov(r(2), 0i32);
    k.label("loop");
    k.isetp(p(1), CmpOp::Le, r(1), 1i32);
    k.bra_if(p(1), "done");
    k.and_(r(3), r(1), 1i32);
    k.isetp(p(2), CmpOp::Eq, r(3), 0i32);
    k.bra_if(p(2), "even");
    k.imad(r(1), r(1), 3i32, 1i32);
    k.bra("next");
    k.label("even");
    k.shr(r(1), r(1), 1i32);
    k.label("next");
    k.iadd(r(2), r(2), 1i32);
    k.bra("loop");
    k.label("done");
    k.shl(r(4), r(0), 2i32);
    k.iadd(r(4), Operand::Param(0), r(4));
    k.st(r(4), 0, r(2));
    k.exit();
    k.build().expect("collatz assembles")
}

const OUT: u32 = 0x10_0000;

fn run_gto_machine(threads: usize) -> (MachineStats, Vec<u32>) {
    let launch = Launch::new(collatz_program(), 12, 256).with_params(vec![OUT]);
    let mut machine = Machine::new(SmConfig::greedy_then_oldest(), 4, launch)
        .expect("GTO machine builds")
        .with_threads(threads);
    let stats = machine.run(50_000_000).expect("GTO machine runs").clone();
    let words = machine.memory().read_words(OUT, 12 * 256);
    (stats, words)
}

#[test]
fn greedy_then_oldest_is_deterministic_across_host_threads() {
    let (reference, ref_mem) = run_gto_machine(1);
    let (eight, mem8) = run_gto_machine(8);
    assert_eq!(eight, reference, "GTO stats diverged at 8 host threads");
    assert_eq!(mem8, ref_mem, "GTO memory diverged at 8 host threads");
    assert!(reference.total.thread_instructions > 0);
}

#[test]
fn greedy_then_oldest_changes_the_schedule_but_not_the_result() {
    // GTO is the same machine as the baseline with a different walk
    // order: results (architectural memory) must match, while the
    // schedule (cycle counts) is genuinely different on a kernel with
    // inter-warp imbalance.
    let run = |cfg: SmConfig| {
        let launch = Launch::new(collatz_program(), 6, 256).with_params(vec![OUT]);
        let mut sm = warpweave_core::Sm::new(cfg, launch).expect("builds");
        let stats = sm.run(50_000_000).expect("runs").clone();
        let mem = sm.memory().read_words(OUT, 6 * 256);
        (stats, mem)
    };
    let (base_stats, base_mem) = run(SmConfig::baseline());
    let (gto_stats, gto_mem) = run(SmConfig::greedy_then_oldest());
    assert_eq!(
        gto_mem, base_mem,
        "scheduling order must not change results"
    );
    assert_eq!(
        gto_stats.thread_instructions, base_stats.thread_instructions,
        "same work, different order"
    );
    assert_ne!(
        (gto_stats.cycles, gto_stats.idle_cycles),
        (base_stats.cycles, base_stats.idle_cycles),
        "GTO should produce a different schedule on an imbalanced kernel"
    );
    // The order parameter composes onto non-baseline policies too.
    let (swi_stats, swi_mem) = run(SmConfig::swi().with_sched_order(SchedOrder::GreedyThenOldest));
    assert_eq!(swi_mem, base_mem);
    assert!(swi_stats.thread_instructions > 0);
}
