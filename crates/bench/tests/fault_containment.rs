//! Fault-containment drills at the harness level: a fault injected into
//! **any** cell of a sweep grid quarantines exactly that cell — every
//! healthy cell completes bit-identical to a fault-free run at 1 and 8
//! host threads — and a checkpoint torn by an injected partial write is
//! salvaged and resumed to a **byte-identical** `BENCH_sweep.json`.

use std::sync::{Arc, OnceLock};

use proptest::prelude::*;

use warpweave_bench::grid;
use warpweave_bench::harness::{run_matrix_at, run_matrix_contained, FaultPolicy};
use warpweave_bench::report::{render_sweep_json, run_machine_probes};
use warpweave_bench::{cell_key, MatrixResult};
use warpweave_core::checkpoint::SweepCheckpoint;
use warpweave_core::faultinject::FaultPlan;
use warpweave_core::{SmConfig, SweepRunner};
use warpweave_workloads::{Scale, Workload};

/// A small but non-trivial grid: 2 workloads × 3 front-ends.
fn test_grid() -> (Vec<SmConfig>, Vec<Box<dyn Workload>>) {
    let configs = grid::figure7_configs().into_iter().take(3).collect();
    (configs, grid::quick_workloads())
}

fn scratch(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("warpweave-fault-cont-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir.join(name)
}

/// The fault-free reference matrix, computed once on one thread.
fn reference() -> &'static MatrixResult {
    static REF: OnceLock<MatrixResult> = OnceLock::new();
    REF.get_or_init(|| {
        let (configs, workloads) = test_grid();
        run_matrix_at(
            &SweepRunner::with_threads(1),
            &configs,
            &workloads,
            Scale::Test,
            false,
        )
    })
}

/// Exhaustive drill (every cell × both fault kinds × 1 and 8 threads):
/// the faulted cell is retried once, quarantined with full provenance,
/// and every other cell is bit-identical to the fault-free reference. A
/// follow-up run on the same store with injection disabled heals the
/// grid to a matrix bit-identical to the reference.
#[test]
fn fault_in_any_cell_contains_to_that_cell() {
    let (configs, workloads) = test_grid();
    let scale = Scale::Test;
    let id = grid::grid_id(&configs, &workloads, scale);
    let total = configs.len() * workloads.len();
    let reference = reference();

    for fault_cell in 0..total {
        // Alternate the kind per cell: every cell index is drilled, both
        // kinds are drilled repeatedly, and the drill stays fast.
        let spec_kind = if fault_cell % 2 == 0 { "panic" } else { "sim" };
        {
            for threads in [1usize, 8] {
                let what = format!("{spec_kind}@cell:{fault_cell} at {threads} threads");
                let plan = FaultPlan::parse(&format!("{spec_kind}@cell:{fault_cell}")).unwrap();
                let policy = FaultPolicy {
                    max_retries: 1,
                    injector: Some(Arc::new(plan.arm())),
                };
                let runner = SweepRunner::with_threads(threads);
                let mut store = SweepCheckpoint::in_memory(id);
                let report = run_matrix_contained(
                    &runner, &configs, &workloads, scale, false, &mut store, None, &policy,
                )
                .unwrap();

                // Exactly the targeted cell is quarantined, with provenance.
                assert_eq!(report.failures.len(), 1, "{what}: one quarantined cell");
                let failure = &report.failures[0];
                let (w, c) = (fault_cell / configs.len(), fault_cell % configs.len());
                assert_eq!(failure.workload, workloads[w].name(), "{what}");
                assert_eq!(failure.config, configs[c].name, "{what}");
                assert_eq!(failure.seed, configs[c].seed, "{what}: seed provenance");
                assert_eq!(failure.attempts, 2, "{what}: one retry before quarantine");
                assert!(report.matrix.is_none(), "{what}: no full matrix");

                // Every healthy cell is bit-identical to the reference.
                assert_eq!(report.healthy.len(), total - 1, "{what}");
                for cell in &report.healthy {
                    let rw = reference
                        .workloads
                        .iter()
                        .position(|n| *n == cell.workload)
                        .unwrap();
                    let rc = reference
                        .configs
                        .iter()
                        .position(|n| *n == cell.config)
                        .unwrap();
                    assert_eq!(
                        cell.stats,
                        reference.cells[rw][rc].stats,
                        "{what}: healthy cell {} drifted",
                        cell_key(&cell.workload, &cell.config)
                    );
                }

                // Healing run: same store, injection off — completes the grid.
                let healed = run_matrix_contained(
                    &runner,
                    &configs,
                    &workloads,
                    scale,
                    false,
                    &mut store,
                    None,
                    &FaultPolicy::none(),
                )
                .unwrap();
                assert!(healed.failures.is_empty(), "{what}: heals cleanly");
                let matrix = healed.matrix.expect("healed grid completes");
                assert_eq!(matrix.workloads, reference.workloads, "{what}");
                assert_eq!(matrix.configs, reference.configs, "{what}");
                for (ra, rb) in matrix.cells.iter().zip(&reference.cells) {
                    for (ca, cb) in ra.iter().zip(rb) {
                        assert_eq!(ca.stats, cb.stats, "{what}: healed cell drifted");
                    }
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// An injected torn write at any record index / cut length crashes
    /// the sweep mid-checkpoint; `salvage` + a resumed run then renders a
    /// `BENCH_sweep.json` payload **byte-identical** to an uninterrupted
    /// run's.
    #[test]
    fn torn_checkpoint_salvages_and_resumes_byte_identical(
        record in 0usize..5,
        keep in 0usize..60,
    ) {
        let (configs, workloads) = test_grid();
        let scale = Scale::Test;
        let id = grid::grid_id(&configs, &workloads, scale);
        let runner = SweepRunner::with_threads(1);

        // The uninterrupted reference payload.
        let ref_json = {
            let probes = run_machine_probes(scale, None).unwrap();
            render_sweep_json("test", reference(), &probes)
        };

        let path = scratch(&format!("torn-{record}-{keep}.checkpoint"));
        let _ = std::fs::remove_file(&path);

        // Phase 1: sweep crashes on the injected torn write.
        let plan = FaultPlan::parse(&format!("torn@record:{record}:{keep}")).unwrap();
        let mut store = SweepCheckpoint::resume(&path, id).unwrap();
        store.arm_faults(Arc::new(plan.arm()));
        let crash = run_matrix_contained(
            &runner, &configs, &workloads, scale, false, &mut store, None,
            &FaultPolicy::none(),
        );
        prop_assert!(crash.is_err(), "torn write must surface as a checkpoint error");
        drop(store);

        // Phase 2: salvage the torn file, then resume to completion.
        let report = SweepCheckpoint::salvage(&path).unwrap();
        prop_assert_eq!(report.kept_cells, record, "records before the tear survive");
        if let Some(sidecar) = &report.quarantine {
            let _ = std::fs::remove_file(sidecar);
        }
        let mut store = SweepCheckpoint::resume(&path, id).unwrap();
        prop_assert_eq!(store.len(), record);
        let resumed = run_matrix_contained(
            &runner, &configs, &workloads, scale, false, &mut store, None,
            &FaultPolicy::none(),
        )
        .unwrap();
        prop_assert!(resumed.failures.is_empty());
        let matrix = resumed.matrix.expect("resumed grid completes");
        let probes = run_machine_probes(scale, Some(&mut store)).unwrap();
        let json = render_sweep_json("test", &matrix, &probes);
        prop_assert_eq!(json, ref_json, "salvaged-and-resumed payload must be byte-identical");
        let _ = std::fs::remove_file(&path);
    }
}
