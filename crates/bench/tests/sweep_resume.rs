//! Integration test of the checkpointable sweep engine: a sweep killed
//! mid-grid resumes from its checkpoint and produces results — and a
//! rendered `BENCH_sweep.json` payload — **bit-identical** to an
//! uninterrupted run, at 1 and 8 host threads alike.

use warpweave_bench::grid;
use warpweave_bench::harness::{run_matrix_at, run_matrix_checkpointed};
use warpweave_bench::report::{render_sweep_json, run_machine_probes};
use warpweave_bench::MatrixResult;
use warpweave_core::checkpoint::{CheckpointError, SweepCheckpoint};
use warpweave_core::{SmConfig, SweepRunner};
use warpweave_workloads::{Scale, Workload};

/// A small but non-trivial grid: 2 workloads × 3 front-ends.
fn test_grid() -> (Vec<SmConfig>, Vec<Box<dyn Workload>>) {
    let configs = grid::figure7_configs().into_iter().take(3).collect();
    (configs, grid::quick_workloads())
}

fn scratch(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("warpweave-sweep-resume-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir.join(name)
}

fn assert_matrices_bit_identical(a: &MatrixResult, b: &MatrixResult, what: &str) {
    assert_eq!(a.workloads, b.workloads, "{what}: workload rows");
    assert_eq!(a.configs, b.configs, "{what}: config columns");
    for (w, (ra, rb)) in a.cells.iter().zip(&b.cells).enumerate() {
        for (c, (ca, cb)) in ra.iter().zip(rb).enumerate() {
            assert_eq!(
                ca.stats, cb.stats,
                "{what}: cell ({}, {}) drifted",
                a.workloads[w], a.configs[c]
            );
        }
    }
}

#[test]
fn interrupted_sweep_resumes_bit_identical_across_thread_counts() {
    let (configs, workloads) = test_grid();
    let scale = Scale::Test;
    let id = grid::grid_id(&configs, &workloads, scale);
    let total_cells = configs.len() * workloads.len();

    // The uninterrupted reference, computed once on one thread.
    let reference = run_matrix_at(
        &SweepRunner::with_threads(1),
        &configs,
        &workloads,
        scale,
        false,
    );
    let reference_probes = run_machine_probes(scale, None).unwrap();
    let reference_json = render_sweep_json("test", &reference, &reference_probes);

    for threads in [1usize, 8] {
        let runner = SweepRunner::with_threads(threads);
        let path = scratch(&format!("resume-{threads}.checkpoint"));
        let _ = std::fs::remove_file(&path);

        // Phase 1: "kill" the sweep after 2 cells — run with a cell
        // budget and drop the store, as a SIGKILL at a cell boundary
        // would leave it.
        let mut store = SweepCheckpoint::resume(&path, id).unwrap();
        let partial = run_matrix_checkpointed(
            &runner,
            &configs,
            &workloads,
            scale,
            false,
            &mut store,
            Some(2),
        )
        .unwrap();
        assert!(partial.is_none(), "{threads} threads: grid cannot be done");
        assert_eq!(store.len(), 2, "{threads} threads: budget respected");
        drop(store);

        // Phase 2: resume from disk and finish.
        let mut store = SweepCheckpoint::resume(&path, id).unwrap();
        assert_eq!(store.len(), 2, "{threads} threads: resume sees both cells");
        let resumed = run_matrix_checkpointed(
            &runner, &configs, &workloads, scale, false, &mut store, None,
        )
        .unwrap()
        .expect("grid completes without a budget");
        assert_eq!(store.len(), total_cells);

        assert_matrices_bit_identical(
            &reference,
            &resumed,
            &format!("{threads} host threads, resumed vs uninterrupted"),
        );

        // The rendered JSON payload — the artifact CI diffs — must be
        // byte-identical too, machine probes included (resumed from the
        // same checkpoint file).
        let probes = run_machine_probes(scale, Some(&mut store)).unwrap();
        let json = render_sweep_json("test", &resumed, &probes);
        assert_eq!(
            json, reference_json,
            "{threads} threads: resumed JSON payload must be byte-identical"
        );

        // Phase 3: a third invocation re-simulates nothing (every cell and
        // probe is already in the store) and still agrees.
        let replay = run_matrix_checkpointed(
            &runner,
            &configs,
            &workloads,
            scale,
            false,
            &mut store,
            Some(0),
        )
        .unwrap()
        .expect("fully-checkpointed grid assembles under a zero budget");
        assert_matrices_bit_identical(&reference, &replay, "replay from checkpoint only");

        let _ = std::fs::remove_file(&path);
    }
}

#[test]
fn checkpoint_refuses_a_different_grid() {
    let (configs, workloads) = test_grid();
    let id = grid::grid_id(&configs, &workloads, Scale::Test);
    let other = grid::grid_id(&configs, &workloads, Scale::Bench);
    assert_ne!(id, other);

    let path = scratch("grid-mismatch.checkpoint");
    let _ = std::fs::remove_file(&path);
    let mut store = SweepCheckpoint::resume(&path, id).unwrap();
    let runner = SweepRunner::with_threads(1);
    run_matrix_checkpointed(
        &runner,
        &configs,
        &workloads,
        Scale::Test,
        false,
        &mut store,
        Some(1),
    )
    .unwrap();
    drop(store);

    assert!(matches!(
        SweepCheckpoint::resume(&path, other),
        Err(CheckpointError::GridMismatch { .. })
    ));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn corrupted_checkpoint_never_resumes() {
    let (configs, workloads) = test_grid();
    let id = grid::grid_id(&configs, &workloads, Scale::Test);
    let path = scratch("corrupt.checkpoint");
    let _ = std::fs::remove_file(&path);

    let mut store = SweepCheckpoint::resume(&path, id).unwrap();
    let runner = SweepRunner::with_threads(1);
    run_matrix_checkpointed(
        &runner,
        &configs,
        &workloads,
        Scale::Test,
        false,
        &mut store,
        Some(2),
    )
    .unwrap();
    drop(store);

    // Tear the final record the way a crash mid-append would.
    let text = std::fs::read_to_string(&path).unwrap();
    std::fs::write(&path, &text[..text.len() - 7]).unwrap();
    assert!(matches!(
        SweepCheckpoint::resume(&path, id),
        Err(CheckpointError::Corrupt { .. })
    ));
    let _ = std::fs::remove_file(&path);
}
