//! Resume smoke test for the checkpointed figure grids (fig8a/fig8b/fig9):
//! the figure binaries route through `harness::run_matrix_figure`, so an
//! interrupted figure run must resume from its checkpoint file and finish
//! with results bit-identical to an uninterrupted in-memory run — and a
//! checkpoint recorded for one figure's grid must be refused by another's.

use warpweave_bench::grid;
use warpweave_bench::harness::{run_matrix_checkpointed, run_matrix_figure, run_matrix_serial_at};
use warpweave_bench::MatrixResult;
use warpweave_core::checkpoint::{CheckpointError, SweepCheckpoint};
use warpweave_core::SweepRunner;
use warpweave_workloads::{by_name, Scale, Workload};

fn scratch(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("warpweave-fig-ckpt-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir.join(name)
}

/// One cheap workload keeps the smoke test fast; the config columns are
/// the real fig. 8(a) grid.
fn fig8a_test_grid() -> (Vec<warpweave_core::SmConfig>, Vec<Box<dyn Workload>>) {
    let configs = grid::constraint_configs();
    let workloads = vec![by_name("Hotspot").expect("registered workload")];
    (configs, workloads)
}

fn assert_matrices_bit_identical(a: &MatrixResult, b: &MatrixResult, what: &str) {
    assert_eq!(a.workloads, b.workloads, "{what}: workload rows");
    assert_eq!(a.configs, b.configs, "{what}: config columns");
    for (ra, rb) in a.cells.iter().zip(&b.cells) {
        for (ca, cb) in ra.iter().zip(rb) {
            assert_eq!(
                ca.stats, cb.stats,
                "{what}: cell {}/{}",
                ca.workload, ca.config
            );
        }
    }
}

#[test]
fn interrupted_figure_grid_resumes_bit_identical() {
    let (configs, workloads) = fig8a_test_grid();
    let scale = Scale::Test;
    let id = grid::grid_id(&configs, &workloads, scale);
    let runner = SweepRunner::with_threads(1);
    let path = scratch("fig8a.checkpoint");
    let _ = std::fs::remove_file(&path);

    // The uninterrupted in-memory reference.
    let reference = run_matrix_serial_at(&configs, &workloads, scale, false);

    // Phase 1: "kill" the figure run after 2 of its 4 cells (a cell
    // budget stands in for SIGKILL at a cell boundary).
    let mut store = SweepCheckpoint::resume(&path, id).unwrap();
    let partial = run_matrix_checkpointed(
        &runner,
        &configs,
        &workloads,
        scale,
        false,
        &mut store,
        Some(2),
    )
    .unwrap();
    assert!(partial.is_none(), "grid cannot be complete after 2 cells");
    assert_eq!(store.len(), 2, "cell budget respected");
    drop(store);

    // Phase 2: the figure entry point resumes from disk and completes.
    let resumed = run_matrix_figure(
        &runner,
        &configs,
        &workloads,
        scale,
        false,
        Some(path.to_str().expect("utf-8 scratch path")),
    );
    assert_matrices_bit_identical(&reference, &resumed, "resumed fig8a grid");

    // The checkpoint now holds the full grid; a re-run simulates nothing
    // new and still reproduces the same matrix from the store.
    let replayed = run_matrix_figure(
        &runner,
        &configs,
        &workloads,
        scale,
        false,
        Some(path.to_str().expect("utf-8 scratch path")),
    );
    assert_matrices_bit_identical(&reference, &replayed, "replayed fig8a grid");
}

#[test]
fn figure_checkpoints_are_grid_bound() {
    // A checkpoint recorded for the fig8a grid must be refused when
    // resumed against the fig9 grid (different configs → different id).
    let (configs_a, workloads) = fig8a_test_grid();
    let scale = Scale::Test;
    let id_a = grid::grid_id(&configs_a, &workloads, scale);
    let path = scratch("cross-figure.checkpoint");
    let _ = std::fs::remove_file(&path);
    let mut store = SweepCheckpoint::resume(&path, id_a).unwrap();
    let _ = run_matrix_checkpointed(
        &SweepRunner::with_threads(1),
        &configs_a,
        &workloads,
        scale,
        false,
        &mut store,
        Some(1),
    )
    .unwrap();
    drop(store);

    let configs_9 = grid::associativity_configs();
    let id_9 = grid::grid_id(&configs_9, &workloads, scale);
    assert_ne!(id_a, id_9, "distinct figure grids must have distinct ids");
    match SweepCheckpoint::resume(&path, id_9) {
        Err(CheckpointError::GridMismatch { .. }) => {}
        other => panic!("expected grid-mismatch refusal, got {other:?}"),
    }
}
