//! Shard-merge determinism: for ANY partition of the sweep grid into
//! shard checkpoints — contiguous, round-robin, overlapping, or with
//! empty shards — the merged payload is byte-identical to the
//! single-host `BENCH_sweep.json`, and merge refuses mismatched grids,
//! torn files and conflicting duplicates.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

use proptest::prelude::*;

use warpweave_bench::grid;
use warpweave_bench::{
    cell_key, job_counts, matrix_from_store, merge_checkpoints, probes_from_store,
    render_sweep_json, run_machine_probes_selected, run_matrix_shard, FaultPolicy, ShardSpec,
};
use warpweave_core::checkpoint::{CellRecord, SweepCheckpoint};
use warpweave_core::SweepRunner;
use warpweave_workloads::Scale;

/// The quick grid simulated once: every job's `(key, record)` in
/// canonical order, the grid id, and the reference single-host payload.
struct Reference {
    records: Vec<(String, CellRecord)>,
    grid_id: u64,
    json: String,
}

fn reference() -> &'static Reference {
    static REF: OnceLock<Reference> = OnceLock::new();
    REF.get_or_init(|| {
        let configs = grid::figure7_configs();
        let workloads = grid::sweep_workloads(false);
        let id = grid::grid_id(&configs, &workloads, Scale::Test);
        let mut store = SweepCheckpoint::in_memory(id);
        let runner = SweepRunner::with_threads(2);
        let report = run_matrix_shard(
            &runner,
            &configs,
            &workloads,
            Scale::Test,
            false,
            &mut store,
            None,
            &FaultPolicy::none(),
            None,
        )
        .expect("reference sweep");
        let matrix = report.matrix.expect("no budget, no failures");
        let all: Vec<usize> = (0..grid::machine_probes().len()).collect();
        let probes = run_machine_probes_selected(Scale::Test, Some(&mut store), &all)
            .expect("reference probes");
        let json = render_sweep_json("test", &matrix, &probes);
        // Canonical job order: matrix cells workload-major, then probes.
        let mut records = Vec::new();
        for w in &workloads {
            for c in &configs {
                let key = cell_key(w.name(), &c.name);
                records.push((key.clone(), store.get(&key).expect("matrix cell").clone()));
            }
        }
        for p in grid::machine_probes() {
            let key = p.key();
            records.push((key.clone(), store.get(&key).expect("probe cell").clone()));
        }
        Reference {
            records,
            grid_id: id,
            json,
        }
    })
}

/// A unique on-disk checkpoint path for one shard of one test case.
fn shard_path(case: usize, shard: usize) -> String {
    std::env::temp_dir()
        .join(format!(
            "ww-shard-merge-{}-{case}-{shard}.ckpt",
            std::process::id()
        ))
        .to_string_lossy()
        .into_owned()
}

/// Writes the jobs at `indices` into a file-backed shard checkpoint.
fn write_shard(path: &str, indices: &[usize]) {
    let reference = reference();
    let _ = std::fs::remove_file(path);
    let mut shard = SweepCheckpoint::resume(path, reference.grid_id).expect("create shard file");
    for &i in indices {
        let (key, record) = &reference.records[i];
        shard.record(key, record.clone()).expect("record cell");
    }
}

/// Renders the sweep payload from a merged union store.
fn render_union(paths: &[String]) -> Result<String, String> {
    let reference = reference();
    let union = merge_checkpoints(paths, reference.grid_id)?;
    let configs = grid::figure7_configs();
    let workloads = grid::sweep_workloads(false);
    let matrix = matrix_from_store(&configs, &workloads, &union)
        .map_err(|missing| format!("missing cells: {missing:?}"))?;
    let probes =
        probes_from_store(&union).map_err(|missing| format!("missing probes: {missing:?}"))?;
    Ok(render_sweep_json("test", &matrix, &probes))
}

static CASE: AtomicUsize = AtomicUsize::new(0);

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// ANY covering partition — each job in one primary shard plus an
    /// arbitrary overlap set, shards possibly empty — merges to the
    /// byte-identical single-host payload, in any merge order.
    #[test]
    fn any_partition_merges_byte_identical(
        primaries in proptest::collection::vec(0usize..4, 17..18),
        overlaps in proptest::collection::vec(0usize..16, 17..18),
        order_seed in 0usize..24,
    ) {
        let reference = reference();
        prop_assert_eq!(reference.records.len(), 17, "quick grid: 10 cells + 7 probes");
        let case = CASE.fetch_add(1, Ordering::Relaxed);
        let mut shards: Vec<Vec<usize>> = vec![Vec::new(); 4];
        for (job, (&primary, &overlap)) in primaries.iter().zip(&overlaps).enumerate() {
            shards[primary].push(job);
            for (s, jobs) in shards.iter_mut().enumerate() {
                if s != primary && overlap & (1 << s) != 0 {
                    jobs.push(job);
                }
            }
        }
        // The merge order is an arbitrary permutation of the shards
        // (Lehmer-decoded from the seed): union must be order-free.
        let mut avail: Vec<usize> = (0..4).collect();
        let mut order = Vec::new();
        let mut seed = order_seed;
        for radix in (1..=4usize).rev() {
            order.push(avail.remove(seed % radix));
            seed /= radix;
        }
        let paths: Vec<String> = order
            .iter()
            .map(|&s| {
                let path = shard_path(case, s);
                write_shard(&path, &shards[s]);
                path
            })
            .collect();
        let merged = render_union(&paths);
        for path in &paths {
            let _ = std::fs::remove_file(path);
        }
        prop_assert_eq!(merged.as_deref(), Ok(reference.json.as_str()));
    }
}

#[test]
fn round_robin_sharded_execution_reproduces_the_single_host_payload() {
    // The real execution path: three `--jobs-from shard:K/3` runs into
    // three stores, unioned, rendered — against the same reference the
    // partition property uses.
    let reference = reference();
    let configs = grid::figure7_configs();
    let workloads = grid::sweep_workloads(false);
    let (matrix_cells, probe_count) = job_counts(&configs, &workloads);
    let runner = SweepRunner::with_threads(2);
    let mut union = SweepCheckpoint::in_memory(reference.grid_id);
    for k in 0..3 {
        let spec = ShardSpec::parse(&format!("shard:{k}/3")).unwrap();
        let indices = spec.select(matrix_cells + probe_count).unwrap();
        let (cells, probe_sel): (Vec<usize>, Vec<usize>) = (
            indices
                .iter()
                .copied()
                .filter(|&i| i < matrix_cells)
                .collect(),
            indices
                .iter()
                .copied()
                .filter(|&i| i >= matrix_cells)
                .map(|i| i - matrix_cells)
                .collect(),
        );
        let mut store = SweepCheckpoint::in_memory(reference.grid_id);
        run_matrix_shard(
            &runner,
            &configs,
            &workloads,
            Scale::Test,
            false,
            &mut store,
            None,
            &FaultPolicy::none(),
            Some(&cells),
        )
        .expect("shard run");
        run_machine_probes_selected(Scale::Test, Some(&mut store), &probe_sel)
            .expect("shard probes");
        for key in store.keys().map(str::to_string).collect::<Vec<_>>() {
            union
                .record(&key, store.get(&key).unwrap().clone())
                .expect("union record");
        }
    }
    let matrix = matrix_from_store(&configs, &workloads, &union).expect("full union");
    let probes = probes_from_store(&union).expect("full probes");
    assert_eq!(
        render_sweep_json("test", &matrix, &probes),
        reference.json,
        "sharded execution must be byte-identical to single-host"
    );
}

#[test]
fn merge_refuses_a_mismatched_grid_id() {
    let reference = reference();
    let path = shard_path(9000, 0);
    let _ = std::fs::remove_file(&path);
    let mut alien = SweepCheckpoint::resume(&path, reference.grid_id ^ 1).unwrap();
    let (key, record) = &reference.records[0];
    alien.record(key, record.clone()).unwrap();
    let err = merge_checkpoints(std::slice::from_ref(&path), reference.grid_id).unwrap_err();
    assert!(err.contains("grid"), "{err}");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn merge_refuses_a_torn_shard_file() {
    let reference = reference();
    let path = shard_path(9001, 0);
    write_shard(&path, &[0, 1, 2]);
    // Tear the last record mid-line, as a crashed writer would.
    let text = std::fs::read_to_string(&path).unwrap();
    std::fs::write(&path, &text[..text.len() - 7]).unwrap();
    let err = merge_checkpoints(std::slice::from_ref(&path), reference.grid_id).unwrap_err();
    assert!(err.contains(&path), "error names the file: {err}");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn merge_refuses_conflicting_duplicate_cells() {
    let reference = reference();
    let a = shard_path(9002, 0);
    let b = shard_path(9002, 1);
    write_shard(&a, &[0]);
    let _ = std::fs::remove_file(&b);
    let mut conflicting = SweepCheckpoint::resume(&b, reference.grid_id).unwrap();
    let (key, record) = &reference.records[0];
    let mut tampered = record.clone();
    tampered.stats.cycles += 1;
    conflicting.record(key, tampered).unwrap();
    let err = merge_checkpoints(&[a.clone(), b.clone()], reference.grid_id).unwrap_err();
    assert!(err.contains("conflicts"), "{err}");
    let _ = std::fs::remove_file(&a);
    let _ = std::fs::remove_file(&b);
}

#[test]
fn incomplete_unions_list_their_missing_cells() {
    let reference = reference();
    let path = shard_path(9003, 0);
    write_shard(&path, &[0, 1]);
    let union = merge_checkpoints(std::slice::from_ref(&path), reference.grid_id).unwrap();
    let configs = grid::figure7_configs();
    let workloads = grid::sweep_workloads(false);
    let missing = matrix_from_store(&configs, &workloads, &union).unwrap_err();
    assert_eq!(missing.len(), 8, "10 matrix cells minus the 2 present");
    assert!(missing.iter().all(|k| k.contains('/')));
    let _ = std::fs::remove_file(&path);
}
