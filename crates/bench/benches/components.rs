//! Micro-benchmarks of the simulator's core structures: the frontier heap
//! (HCT sorter), the dependency-matrix scoreboard, the coalescer and the
//! L1 — the pieces on the per-cycle critical path.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use warpweave_core::{DepMatrix, FrontierHeap, Mask, Transition};
use warpweave_isa::Pc;
use warpweave_mem::{coalesce, Cache, CacheConfig};

fn bench_heap(c: &mut Criterion) {
    c.bench_function("frontier_heap_diverge_merge", |b| {
        b.iter(|| {
            let mut h = FrontierHeap::new(Mask::full(64));
            for i in 0..16u32 {
                let cur = h.primary().expect("live");
                let taken = Mask::from_bits(0x5555_5555_5555_5555) & cur.mask;
                if taken.is_empty() || taken == cur.mask {
                    break;
                }
                let t = Transition::from_branch(cur.mask, taken, Pc(40 + i), Pc(1 + i));
                h.apply_pair(Some(t), None, true);
            }
            black_box(h.live_splits())
        })
    });
}

fn bench_depmatrix(c: &mut Criterion) {
    c.bench_function("dep_matrix_compose", |b| {
        let mut m = DepMatrix::identity();
        m.set(0, 1, true);
        m.set(1, 2, true);
        b.iter(|| black_box(m.compose(black_box(m))))
    });
}

fn bench_coalesce(c: &mut Criterion) {
    let scattered: Vec<(usize, u32)> = (0..64).map(|i| (i, (i as u32 * 193) % 8192)).collect();
    let unit: Vec<(usize, u32)> = (0..64).map(|i| (i, i as u32 * 4)).collect();
    c.bench_function("coalesce_scattered_64", |b| {
        b.iter(|| black_box(coalesce(black_box(&scattered))).len())
    });
    c.bench_function("coalesce_unit_stride_64", |b| {
        b.iter(|| black_box(coalesce(black_box(&unit))).len())
    });
}

fn bench_cache(c: &mut Criterion) {
    c.bench_function("l1_access_stream", |b| {
        let mut l1 = Cache::new(CacheConfig::paper_l1());
        let mut addr = 0u32;
        b.iter(|| {
            addr = addr.wrapping_add(128) & 0xf_ffff;
            black_box(l1.access_load(addr))
        })
    });
}

criterion_group!(
    benches,
    bench_heap,
    bench_depmatrix,
    bench_coalesce,
    bench_cache
);
criterion_main!(benches);
