//! Criterion wrapper for figure 8: SBI reconvergence constraints (8a) and
//! SWI lane-shuffling policies (8b) on one irregular workload each.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use warpweave_core::{LaneShuffle, SmConfig};
use warpweave_workloads::{by_name, run_prepared, Scale};

fn bench_constraints(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8a_constraints");
    group.sample_size(10);
    for on in [false, true] {
        let cfg = SmConfig::sbi().with_constraints(on);
        let w = by_name("Eigenvalues").expect("registered");
        group.bench_with_input(
            BenchmarkId::new("sbi", if on { "on" } else { "off" }),
            &cfg,
            |b, cfg| {
                b.iter(|| {
                    run_prepared(cfg, w.prepare(Scale::Test), false)
                        .expect("runs")
                        .cycles
                })
            },
        );
    }
    group.finish();
}

fn bench_lane_shuffle(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8b_lane_shuffle");
    group.sample_size(10);
    for shuffle in LaneShuffle::ALL {
        let cfg = SmConfig::swi().with_lane_shuffle(shuffle);
        let w = by_name("Needleman-Wunsch").expect("registered");
        group.bench_with_input(BenchmarkId::new("swi", shuffle.name()), &cfg, |b, cfg| {
            b.iter(|| {
                run_prepared(cfg, w.prepare(Scale::Test), false)
                    .expect("runs")
                    .cycles
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_constraints, bench_lane_shuffle);
criterion_main!(benches);
