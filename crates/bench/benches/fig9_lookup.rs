//! Criterion wrapper for figure 9: the SWI mask-lookup associativity sweep
//! (fully-associative / 11-way / 3-way / direct-mapped) with the 24-warp
//! provisioning of table 3.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use warpweave_core::{Associativity, SmConfig};
use warpweave_workloads::{by_name, run_prepared, Scale};

fn bench_associativity(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9_associativity");
    group.sample_size(10);
    for assoc in [
        Associativity::Full,
        Associativity::Ways(11),
        Associativity::Ways(3),
        Associativity::Ways(1),
    ] {
        let cfg = SmConfig::swi().with_warps(24).with_assoc(assoc);
        let w = by_name("LUD").expect("registered");
        group.bench_with_input(BenchmarkId::new("swi", assoc.name()), &cfg, |b, cfg| {
            b.iter(|| {
                run_prepared(cfg, w.prepare(Scale::Test), false)
                    .expect("runs")
                    .cycles
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_associativity);
criterion_main!(benches);
