//! Criterion wrapper for figure 7: simulates one representative regular
//! (MatrixMul) and one irregular (SortingNetworks) workload under every
//! architecture at test scale. The measured wall time is the simulator's
//! own speed; the reported IPC shape is what reproduces the figure — run
//! `fig7_performance` for the full table.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use warpweave_core::SmConfig;
use warpweave_workloads::{by_name, run_prepared, Scale};

fn bench_fig7(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7");
    group.sample_size(10);
    for workload in ["MatrixMul", "SortingNetworks"] {
        for cfg in SmConfig::figure7_set() {
            let w = by_name(workload).expect("registered workload");
            group.bench_with_input(BenchmarkId::new(workload, &cfg.name), &cfg, |b, cfg| {
                b.iter(|| {
                    let prepared = w.prepare(Scale::Test);
                    let stats = run_prepared(cfg, prepared, false).expect("run succeeds");
                    stats.thread_instructions
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig7);
criterion_main!(benches);
