//! Criterion comparison of the serial vs. parallel sweep paths and of the
//! single-SM vs. multi-SM machine on one workload. The absolute numbers
//! land in `BENCH_sweep.json` via the `bench_sweep` binary; this bench
//! tracks the same ratios under criterion so regressions show up in
//! `cargo bench` output.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use warpweave_core::{SmConfig, SweepRunner};
use warpweave_workloads::{by_name, run_prepared, run_prepared_multi_sm, Scale};

/// The job list both paths execute: 2 representative workloads (one
/// regular, one irregular) × the five fig. 7 front-ends, test scale.
fn jobs() -> Vec<(&'static str, SmConfig)> {
    let mut v = Vec::new();
    for workload in ["MatrixMul", "SortingNetworks"] {
        for cfg in SmConfig::figure7_set() {
            v.push((workload, cfg));
        }
    }
    v
}

fn run_cell(job: &(&'static str, SmConfig)) -> u64 {
    let w = by_name(job.0).expect("registered workload");
    run_prepared(&job.1, w.prepare(Scale::Test), false)
        .expect("cell runs")
        .cycles
}

fn bench_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("sweep");
    group.sample_size(10);
    let jobs = jobs();
    group.bench_function("serial", |b| {
        b.iter(|| jobs.iter().map(run_cell).sum::<u64>())
    });
    let runner = SweepRunner::new();
    group.bench_function("parallel", |b| {
        b.iter(|| runner.run(&jobs, run_cell).into_iter().sum::<u64>())
    });
    group.finish();
}

fn bench_machine(c: &mut Criterion) {
    let mut group = c.benchmark_group("machine");
    group.sample_size(10);
    let w = by_name("Mandelbrot").expect("registered workload");
    for num_sms in [1usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("sbi_swi", format!("{num_sms}sm")),
            &num_sms,
            |b, &n| {
                b.iter(|| {
                    run_prepared_multi_sm(&SmConfig::sbi_swi(), n, w.prepare(Scale::Test), false)
                        .expect("machine runs")
                        .total
                        .cycles
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_sweep, bench_machine);
criterion_main!(benches);
