//! Superblock trace IR: straight-line fusion of decoded programs.
//!
//! A **superblock** is a maximal straight-line run of non-control
//! instructions — everything except `BRA`, `SYNC`, `BAR` and `EXIT` is
//! eligible — fused at program-decode time into a sequence of
//! [`FusedOp`] micro-ops with operands pre-resolved: immediates and
//! kernel parameters become splat descriptors, warp-uniform special
//! registers are tagged for a one-load-per-warp splat, and register
//! operands carry their precomputed row index into the SoA register
//! file. Guards stay symbolic (a predicate + sense pair) because the
//! executing core folds them into a single predicate-bitmask AND per
//! micro-op.
//!
//! Fusion also respects basic-block structure (via [`crate::cfg`]): a run
//! may only cross a block leader when the entered block has exactly one
//! predecessor and is reached from it by fall-through — the classic
//! single-entry chain-fuse rule. (With this ISA's leader construction a
//! fall-through successor with a single predecessor is never a leader in
//! the first place, so the rule is a guard against future CFG shapes
//! rather than a load-bearing filter today.) Runs shorter than
//! [`MIN_SUPERBLOCK_LEN`] are not worth a table entry and are left to the
//! interpreter.
//!
//! The timing model is untouched by design: a superblock never changes
//! *when* an instruction executes, only *how* its operands are resolved
//! (see `warpweave-core`'s `superblock` module for the execution
//! contract).

use crate::cfg::{build_cfg, Cfg};
use crate::instr::{Guard, Instruction, Operand};
use crate::op::{CmpOp, MemSpace, Op};
use crate::program::{Pc, Program};
use crate::reg::{Pred, Reg, SpecialReg};

/// Minimum number of fused instructions that justify a superblock entry.
pub const MIN_SUPERBLOCK_LEN: usize = 2;

/// A pre-resolved source operand of a [`FusedOp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FusedSrc {
    /// Operand slot not present.
    None,
    /// A register operand: the precomputed row index into the SoA file.
    Row(u8),
    /// An immediate, splat across the warp.
    Imm(u32),
    /// A kernel parameter index (the launch resolves it to a splat).
    Param(u8),
    /// A special register: warp-uniform ones splat once per warp, `Tid`
    /// is affine in the lane index and `LaneId` reads the shuffle row.
    Special(SpecialReg),
}

impl FusedSrc {
    fn from_operand(op: Option<Operand>) -> FusedSrc {
        match op {
            None => FusedSrc::None,
            Some(Operand::Reg(r)) => FusedSrc::Row(r.index() as u8),
            Some(Operand::Imm(v)) => FusedSrc::Imm(v),
            Some(Operand::Param(i)) => FusedSrc::Param(i),
            Some(Operand::Special(s)) => FusedSrc::Special(s),
        }
    }
}

/// One fused micro-op: the decoded fields of an eligible instruction with
/// operand resolution done ahead of time.
#[derive(Debug, Clone, PartialEq)]
pub struct FusedOp {
    /// The opcode (never `Bra`/`Sync`/`Bar`/`Exit`).
    pub op: Op,
    /// Guard predicate, folded into one bitmask AND at execute time.
    pub guard: Option<Guard>,
    /// Destination register (row index = `Reg::index`).
    pub dst: Option<Reg>,
    /// Destination predicate for `ISetP`/`FSetP`.
    pub pdst: Option<Pred>,
    /// Pre-resolved source operands.
    pub srcs: [FusedSrc; 3],
    /// Comparison for the set-predicate ops.
    pub cmp: Option<CmpOp>,
    /// Selector predicate for `Sel`.
    pub sel_pred: Option<Pred>,
    /// Address space for memory ops.
    pub space: MemSpace,
    /// Byte offset for memory ops.
    pub offset: i32,
}

impl FusedOp {
    fn from_instruction(ins: &Instruction) -> FusedOp {
        debug_assert!(fusible(ins));
        FusedOp {
            op: ins.op,
            guard: ins.guard,
            dst: ins.dst,
            pdst: ins.pdst,
            srcs: [
                FusedSrc::from_operand(ins.srcs[0]),
                FusedSrc::from_operand(ins.srcs[1]),
                FusedSrc::from_operand(ins.srcs[2]),
            ],
            cmp: ins.cmp,
            sel_pred: ins.sel_pred,
            space: ins.space,
            offset: ins.offset,
        }
    }
}

/// A fused straight-line region covering instructions `[start, end)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Superblock {
    /// First covered instruction.
    pub start: Pc,
    /// One past the last covered instruction.
    pub end: Pc,
    /// One fused micro-op per covered instruction, in address order
    /// (`ops[i]` corresponds to pc `start + i`).
    pub ops: Vec<FusedOp>,
}

impl Superblock {
    /// Number of instructions this superblock covers.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Always false: superblocks are at least [`MIN_SUPERBLOCK_LEN`] long.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The fused op for `pc`, if this superblock covers it.
    pub fn op_at(&self, pc: Pc) -> Option<&FusedOp> {
        if pc.0 >= self.start.0 && pc.0 < self.end.0 {
            Some(&self.ops[(pc.0 - self.start.0) as usize])
        } else {
            None
        }
    }
}

/// The superblocks of one decoded program, with a per-pc entry index.
#[derive(Debug, Clone, Default)]
pub struct SuperblockSet {
    sbs: Vec<Superblock>,
    /// `entry[pc]` = superblock index if `pc` is a superblock start.
    entry: Vec<Option<u32>>,
}

impl SuperblockSet {
    /// Fuses `program`'s straight-line regions. See the module docs for
    /// the fusion rules.
    pub fn build(program: &Program) -> SuperblockSet {
        build_superblocks(program.instructions())
    }

    /// All superblocks, in address order.
    pub fn superblocks(&self) -> &[Superblock] {
        &self.sbs
    }

    /// Index of the superblock starting exactly at `pc`, if any.
    pub fn entry_index_at(&self, pc: Pc) -> Option<u32> {
        self.entry.get(pc.index()).copied().flatten()
    }

    /// The superblock starting exactly at `pc`, if any.
    pub fn entry_at(&self, pc: Pc) -> Option<&Superblock> {
        match self.entry.get(pc.index()) {
            Some(&Some(i)) => Some(&self.sbs[i as usize]),
            _ => None,
        }
    }

    /// Total instructions covered by some superblock (static count).
    pub fn covered_instructions(&self) -> usize {
        self.sbs.iter().map(Superblock::len).sum()
    }
}

/// Whether an instruction may live inside a superblock: everything except
/// the control class (`BRA` redirects flow, `SYNC`/`BAR` are
/// reconvergence/barrier boundaries, `EXIT` retires threads). `NOP` is
/// control-unit but flow-neutral, so it fuses.
pub fn fusible(ins: &Instruction) -> bool {
    !matches!(ins.op, Op::Bra | Op::Sync | Op::Bar | Op::Exit)
}

/// Whether the block whose leader is instruction `j` may be chain-fused
/// onto the preceding run: single predecessor, reached by fall-through.
fn chain_fusible(cfg: &Cfg, instrs: &[Instruction], j: usize) -> bool {
    let b = cfg.block_containing(j);
    let preds = &cfg.blocks[b].preds;
    if preds.len() != 1 || preds[0] + 1 != b {
        return false;
    }
    // Fall-through means the predecessor's terminator is not a jump.
    let term = &instrs[cfg.blocks[preds[0]].end - 1];
    !matches!(term.op, Op::Bra | Op::Exit)
}

/// Fuses maximal eligible runs of `instrs` into superblocks.
pub fn build_superblocks(instrs: &[Instruction]) -> SuperblockSet {
    let mut set = SuperblockSet {
        sbs: Vec::new(),
        entry: vec![None; instrs.len()],
    };
    if instrs.is_empty() {
        return set;
    }
    let cfg = build_cfg(instrs);
    let mut i = 0;
    while i < instrs.len() {
        if !fusible(&instrs[i]) {
            i += 1;
            continue;
        }
        let start = i;
        let mut j = i + 1;
        while j < instrs.len() && fusible(&instrs[j]) {
            if cfg.is_leader(j) && !chain_fusible(&cfg, instrs, j) {
                break;
            }
            j += 1;
        }
        if j - start >= MIN_SUPERBLOCK_LEN {
            let ops = instrs[start..j]
                .iter()
                .map(FusedOp::from_instruction)
                .collect();
            set.entry[start] = Some(set.sbs.len() as u32);
            set.sbs.push(Superblock {
                start: Pc(start as u32),
                end: Pc(j as u32),
                ops,
            });
        }
        i = j;
    }
    set
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::KernelBuilder;
    use crate::op::CmpOp;
    use crate::reg::{p, r};

    /// Straight-line kernel: one superblock covering everything but EXIT.
    #[test]
    fn straight_line_fuses_to_one_superblock() {
        let mut k = KernelBuilder::new("straight");
        k.mov(r(0), SpecialReg::Tid);
        k.iadd(r(1), r(0), 7i32);
        k.imul(r(2), r(1), r(1));
        k.st(r(2), 0, r(1));
        k.exit();
        let prog = k.build().unwrap();
        let set = SuperblockSet::build(&prog);
        assert_eq!(set.superblocks().len(), 1);
        let sb = &set.superblocks()[0];
        assert_eq!((sb.start, sb.end), (Pc(0), Pc(4)));
        assert_eq!(set.covered_instructions(), 4);
        assert!(set.entry_at(Pc(0)).is_some());
        assert!(set.entry_at(Pc(1)).is_none());
        // Operand pre-resolution: row indices and splats.
        assert_eq!(sb.ops[0].srcs[0], FusedSrc::Special(SpecialReg::Tid));
        assert_eq!(
            sb.ops[1].srcs,
            [FusedSrc::Row(0), FusedSrc::Imm(7), FusedSrc::None]
        );
        assert_eq!(sb.ops[3].op, Op::St);
        assert_eq!(sb.ops[3].srcs[0], FusedSrc::Row(2));
    }

    /// Barriers split runs even inside one basic block (BAR is not a CFG
    /// leader in this ISA).
    #[test]
    fn barrier_splits_runs_mid_block() {
        let mut k = KernelBuilder::new("bar");
        k.mov(r(0), 1i32);
        k.iadd(r(1), r(0), r(0));
        k.bar();
        k.imul(r(2), r(1), r(1));
        k.iadd(r(3), r(2), 1i32);
        k.exit();
        let prog = k.build().unwrap();
        let set = SuperblockSet::build(&prog);
        assert_eq!(set.superblocks().len(), 2);
        assert_eq!(set.superblocks()[0].end, Pc(2));
        assert_eq!(set.superblocks()[1].start, Pc(3));
        assert_eq!(set.superblocks()[1].end, Pc(5));
    }

    /// Runs shorter than MIN_SUPERBLOCK_LEN are skipped; branch targets
    /// start fresh runs.
    #[test]
    fn divergent_kernel_respects_leaders_and_min_len() {
        let mut k = KernelBuilder::new("div");
        k.mov(r(0), SpecialReg::Tid);
        k.isetp(p(0), CmpOp::Lt, r(0), 16i32);
        k.bra_ifn(p(0), "else");
        k.mov(r(1), 1i32); // lone eligible op: too short to fuse
        k.bra("join");
        k.label("else");
        k.mov(r(1), 2i32);
        k.mov(r(2), 3i32);
        k.label("join");
        k.iadd(r(3), r(1), r(2));
        k.exit();
        let prog = k.build().unwrap();
        let set = SuperblockSet::build(&prog);
        // Run 1: [0,2) prologue. Run 2: the else block's two movs. The
        // single mov on the then path and the post-join iadd (cut short
        // by the inserted SYNC and EXIT) stay uncovered.
        assert_eq!(set.superblocks().len(), 2);
        assert_eq!(set.superblocks()[0].start, Pc(0));
        assert_eq!(set.superblocks()[0].end, Pc(2));
        assert_eq!(set.superblocks()[1].len(), 2);
        for sb in set.superblocks() {
            for op in &sb.ops {
                assert!(!matches!(op.op, Op::Bra | Op::Sync | Op::Bar | Op::Exit));
            }
        }
    }

    #[test]
    fn op_at_maps_pcs_to_fused_ops() {
        let mut k = KernelBuilder::new("map");
        k.mov(r(0), 1i32);
        k.iadd(r(1), r(0), 2i32);
        k.imul(r(2), r(1), 3i32);
        k.exit();
        let prog = k.build().unwrap();
        let set = SuperblockSet::build(&prog);
        let sb = &set.superblocks()[0];
        assert_eq!(sb.op_at(Pc(1)).unwrap().op, Op::IAdd);
        assert!(sb.op_at(Pc(3)).is_none());
        assert!(!sb.is_empty());
    }
}
