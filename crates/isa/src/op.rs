//! Opcodes and their execution-unit classification.
//!
//! The SM back-end (paper §2, fig. 1) has four SIMD groups: two 32-wide
//! multiply-add (MAD) groups, one 8-wide special-function unit (SFU) and one
//! 32-wide load-store unit (LSU). Every opcode maps to exactly one
//! [`UnitClass`], which the schedulers use for structural-hazard checks.

use std::fmt;

/// The functional-unit class an instruction executes on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnitClass {
    /// Multiply-add / general ALU group ("MAD" in the paper).
    Mad,
    /// Special-function unit (transcendentals).
    Sfu,
    /// Load-store unit (one 128-byte L1 port).
    Lsu,
    /// Control instructions (branches, barriers, sync markers) — these issue
    /// but consume no back-end SIMD group.
    Control,
}

/// Comparison operators for `ISetP` / `FSetP`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than (signed / ordered).
    Lt,
    /// Less or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater or equal.
    Ge,
}

impl CmpOp {
    /// Evaluates the comparison on signed 32-bit integers.
    pub fn eval_i32(self, a: i32, b: i32) -> bool {
        match self {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
        }
    }

    /// Evaluates the comparison on `f32` values (IEEE ordered semantics).
    pub fn eval_f32(self, a: f32, b: f32) -> bool {
        match self {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "eq",
            CmpOp::Ne => "ne",
            CmpOp::Lt => "lt",
            CmpOp::Le => "le",
            CmpOp::Gt => "gt",
            CmpOp::Ge => "ge",
        };
        f.write_str(s)
    }
}

/// Memory address spaces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MemSpace {
    /// Off-chip global memory, cached in L1, coalesced into 128-byte blocks.
    #[default]
    Global,
    /// On-chip shared memory (per-block scratchpad); not cached, conflicts
    /// serialise per distinct 32-bit bank word.
    Shared,
}

/// Instruction opcodes.
///
/// Integer values are 32-bit two's complement; floating-point values are
/// IEEE-754 binary32 bit-cast into the 32-bit register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    // --- MAD class: moves, integer & binary32 arithmetic -------------------
    /// `dst = src0` (register, immediate or special register move).
    Mov,
    /// `dst = src0 + src1` (wrapping i32 add).
    IAdd,
    /// `dst = src0 - src1`.
    ISub,
    /// `dst = src0 * src1` (low 32 bits).
    IMul,
    /// `dst = src0 * src1 + src2` (multiply-add).
    IMad,
    /// `dst = min(src0, src1)` signed.
    IMin,
    /// `dst = max(src0, src1)` signed.
    IMax,
    /// `dst = src0 & src1`.
    And,
    /// `dst = src0 | src1`.
    Or,
    /// `dst = src0 ^ src1`.
    Xor,
    /// `dst = !src0` (bitwise not).
    Not,
    /// `dst = src0 << (src1 & 31)`.
    Shl,
    /// `dst = src0 >> (src1 & 31)` (logical).
    Shr,
    /// `dst = src0 >> (src1 & 31)` (arithmetic).
    Sra,
    /// `dst = src0 + src1` (f32).
    FAdd,
    /// `dst = src0 - src1` (f32).
    FSub,
    /// `dst = src0 * src1` (f32).
    FMul,
    /// `dst = src0 * src1 + src2` (fused, f32).
    FFma,
    /// `dst = min(src0, src1)` (f32).
    FMin,
    /// `dst = max(src0, src1)` (f32).
    FMax,
    /// `dst = (f32) (i32) src0`.
    I2F,
    /// `dst = (i32) (f32) src0` (truncating).
    F2I,
    /// `pdst = src0 <cmp> src1` on i32.
    ISetP,
    /// `pdst = src0 <cmp> src1` on f32.
    FSetP,
    /// `dst = psrc ? src0 : src1` (per-thread select on `sel_pred`).
    Sel,

    // --- SFU class: transcendentals (f32) ----------------------------------
    /// `dst = 1 / src0`.
    Rcp,
    /// `dst = sqrt(src0)`.
    Sqrt,
    /// `dst = 1 / sqrt(src0)`.
    Rsqrt,
    /// `dst = sin(src0)`.
    Sin,
    /// `dst = cos(src0)`.
    Cos,
    /// `dst = 2^src0`.
    Ex2,
    /// `dst = log2(src0)`.
    Lg2,

    // --- LSU class ----------------------------------------------------------
    /// `dst = mem[src0 + offset]` (32-bit load).
    Ld,
    /// `mem[src0 + offset] = src1` (32-bit store).
    St,
    /// `mem[src0 + offset] += src1` atomically; `dst` (optional) receives the
    /// old value. Conflicting lanes serialise.
    AtomAdd,

    // --- Control class -------------------------------------------------------
    /// Branch to `target`. Unguarded: uniform jump. Guarded (`@p bra`):
    /// potentially divergent — guard-true threads jump, others fall through.
    Bra,
    /// Reconvergence marker (paper §3.3). Payload is `PCdiv`, the last
    /// instruction of the immediate dominator of this reconvergence point.
    /// Executes as a NOP except under SBI reconvergence constraints, where it
    /// acts as a selective synchronisation barrier between warp-splits.
    Sync,
    /// Block-wide barrier (`bar.sync`): threads wait until every non-exited
    /// thread of the block arrives.
    Bar,
    /// Thread termination.
    Exit,
    /// No operation.
    Nop,
}

impl Op {
    /// Returns the functional-unit class this opcode executes on.
    pub fn unit(self) -> UnitClass {
        use Op::*;
        match self {
            Mov | IAdd | ISub | IMul | IMad | IMin | IMax | And | Or | Xor | Not | Shl | Shr
            | Sra | FAdd | FSub | FMul | FFma | FMin | FMax | I2F | F2I | ISetP | FSetP | Sel => {
                UnitClass::Mad
            }
            Rcp | Sqrt | Rsqrt | Sin | Cos | Ex2 | Lg2 => UnitClass::Sfu,
            Ld | St | AtomAdd => UnitClass::Lsu,
            Bra | Sync | Bar | Exit | Nop => UnitClass::Control,
        }
    }

    /// True for `Bra` (the only PC-changing opcode).
    pub fn is_branch(self) -> bool {
        matches!(self, Op::Bra)
    }

    /// True for memory operations (LSU class).
    pub fn is_memory(self) -> bool {
        self.unit() == UnitClass::Lsu
    }

    /// Lower-case mnemonic used by the disassembler.
    pub fn mnemonic(self) -> &'static str {
        use Op::*;
        match self {
            Mov => "mov",
            IAdd => "iadd",
            ISub => "isub",
            IMul => "imul",
            IMad => "imad",
            IMin => "imin",
            IMax => "imax",
            And => "and",
            Or => "or",
            Xor => "xor",
            Not => "not",
            Shl => "shl",
            Shr => "shr",
            Sra => "sra",
            FAdd => "fadd",
            FSub => "fsub",
            FMul => "fmul",
            FFma => "ffma",
            FMin => "fmin",
            FMax => "fmax",
            I2F => "i2f",
            F2I => "f2i",
            ISetP => "isetp",
            FSetP => "fsetp",
            Sel => "sel",
            Rcp => "rcp",
            Sqrt => "sqrt",
            Rsqrt => "rsqrt",
            Sin => "sin",
            Cos => "cos",
            Ex2 => "ex2",
            Lg2 => "lg2",
            Ld => "ld",
            St => "st",
            AtomAdd => "atom.add",
            Bra => "bra",
            Sync => "sync",
            Bar => "bar.sync",
            Exit => "exit",
            Nop => "nop",
        }
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_classification() {
        assert_eq!(Op::IMad.unit(), UnitClass::Mad);
        assert_eq!(Op::FFma.unit(), UnitClass::Mad);
        assert_eq!(Op::Rcp.unit(), UnitClass::Sfu);
        assert_eq!(Op::Ld.unit(), UnitClass::Lsu);
        assert_eq!(Op::AtomAdd.unit(), UnitClass::Lsu);
        assert_eq!(Op::Bra.unit(), UnitClass::Control);
        assert_eq!(Op::Sync.unit(), UnitClass::Control);
    }

    #[test]
    fn cmp_semantics() {
        assert!(CmpOp::Lt.eval_i32(-1, 0));
        assert!(!CmpOp::Lt.eval_i32(0, -1));
        assert!(CmpOp::Ge.eval_i32(5, 5));
        assert!(CmpOp::Ne.eval_f32(1.0, 2.0));
        assert!(!CmpOp::Eq.eval_f32(f32::NAN, f32::NAN));
    }

    #[test]
    fn branch_and_memory_predicates() {
        assert!(Op::Bra.is_branch());
        assert!(!Op::Sync.is_branch());
        assert!(Op::St.is_memory());
        assert!(!Op::Mov.is_memory());
    }
}
