//! A fluent assembler for warpweave kernels.
//!
//! [`KernelBuilder`] emits instructions with symbolic labels, then `build()`
//! resolves labels, runs the CFG pass ([`crate::cfg`]) to annotate
//! reconvergence points and insert `SYNC` markers, and returns a validated
//! [`Program`].
//!
//! # Examples
//! ```
//! use warpweave_isa::{KernelBuilder, CmpOp, r, p};
//!
//! # fn main() -> Result<(), String> {
//! let mut k = KernelBuilder::new("count_down");
//! k.mov(r(0), 10i32);
//! k.label("loop");
//! k.iadd(r(0), r(0), -1i32);
//! k.isetp(p(0), CmpOp::Gt, r(0), 0i32);
//! k.bra_if(p(0), "loop");
//! k.exit();
//! let program = k.build()?;
//! assert!(program.is_frontier_ordered());
//! # Ok(())
//! # }
//! ```

use std::collections::HashMap;

use crate::cfg::{analyze_and_finalize, LayoutReport};
use crate::instr::{Guard, Instruction, Operand};
use crate::op::{CmpOp, MemSpace, Op};
use crate::program::{Pc, Program};
use crate::reg::{Pred, Reg};

/// Incrementally builds a kernel; see the [module docs](self).
#[derive(Debug, Clone)]
pub struct KernelBuilder {
    name: String,
    instrs: Vec<Instruction>,
    labels: HashMap<String, usize>,
    fixups: Vec<(usize, String)>,
    pending_guard: Option<Guard>,
    insert_syncs: bool,
}

impl KernelBuilder {
    /// Starts a new kernel named `name`.
    pub fn new(name: impl Into<String>) -> Self {
        KernelBuilder {
            name: name.into(),
            instrs: Vec::new(),
            labels: HashMap::new(),
            fixups: Vec::new(),
            pending_guard: None,
            insert_syncs: true,
        }
    }

    /// Disables automatic `SYNC` insertion at reconvergence points.
    /// (Programs still run on every architecture; SBI reconvergence
    /// constraints simply find no synchronisation markers.)
    pub fn without_syncs(&mut self) -> &mut Self {
        self.insert_syncs = false;
        self
    }

    /// Defines `name` at the current position (the next emitted instruction).
    pub fn label(&mut self, name: impl Into<String>) -> &mut Self {
        let name = name.into();
        assert!(
            self.labels
                .insert(name.clone(), self.instrs.len())
                .is_none(),
            "label `{name}` defined twice"
        );
        self
    }

    /// Applies an `@p` guard to the next emitted instruction.
    pub fn guard_t(&mut self, pred: Pred) -> &mut Self {
        self.pending_guard = Some(Guard::if_true(pred));
        self
    }

    /// Applies an `@!p` guard to the next emitted instruction.
    pub fn guard_f(&mut self, pred: Pred) -> &mut Self {
        self.pending_guard = Some(Guard::if_false(pred));
        self
    }

    fn emit(&mut self, mut i: Instruction) -> &mut Self {
        if let Some(g) = self.pending_guard.take() {
            i.guard = Some(g);
        }
        self.instrs.push(i);
        self
    }

    fn emit3(
        &mut self,
        op: Op,
        dst: Reg,
        a: impl Into<Operand>,
        b: impl Into<Operand>,
        c: impl Into<Operand>,
    ) -> &mut Self {
        let mut i = Instruction::new(op);
        i.dst = Some(dst);
        i.srcs = [Some(a.into()), Some(b.into()), Some(c.into())];
        self.emit(i)
    }

    fn emit2(
        &mut self,
        op: Op,
        dst: Reg,
        a: impl Into<Operand>,
        b: impl Into<Operand>,
    ) -> &mut Self {
        let mut i = Instruction::new(op);
        i.dst = Some(dst);
        i.srcs = [Some(a.into()), Some(b.into()), None];
        self.emit(i)
    }

    fn emit1(&mut self, op: Op, dst: Reg, a: impl Into<Operand>) -> &mut Self {
        let mut i = Instruction::new(op);
        i.dst = Some(dst);
        i.srcs = [Some(a.into()), None, None];
        self.emit(i)
    }

    // --- moves & integer ALU -------------------------------------------------

    /// `dst = src`.
    pub fn mov(&mut self, dst: Reg, src: impl Into<Operand>) -> &mut Self {
        self.emit1(Op::Mov, dst, src)
    }

    /// `dst = a + b` (i32).
    pub fn iadd(&mut self, dst: Reg, a: impl Into<Operand>, b: impl Into<Operand>) -> &mut Self {
        self.emit2(Op::IAdd, dst, a, b)
    }

    /// `dst = a - b` (i32).
    pub fn isub(&mut self, dst: Reg, a: impl Into<Operand>, b: impl Into<Operand>) -> &mut Self {
        self.emit2(Op::ISub, dst, a, b)
    }

    /// `dst = a * b` (i32, low word).
    pub fn imul(&mut self, dst: Reg, a: impl Into<Operand>, b: impl Into<Operand>) -> &mut Self {
        self.emit2(Op::IMul, dst, a, b)
    }

    /// `dst = a * b + c` (i32).
    pub fn imad(
        &mut self,
        dst: Reg,
        a: impl Into<Operand>,
        b: impl Into<Operand>,
        c: impl Into<Operand>,
    ) -> &mut Self {
        self.emit3(Op::IMad, dst, a, b, c)
    }

    /// `dst = min(a, b)` signed.
    pub fn imin(&mut self, dst: Reg, a: impl Into<Operand>, b: impl Into<Operand>) -> &mut Self {
        self.emit2(Op::IMin, dst, a, b)
    }

    /// `dst = max(a, b)` signed.
    pub fn imax(&mut self, dst: Reg, a: impl Into<Operand>, b: impl Into<Operand>) -> &mut Self {
        self.emit2(Op::IMax, dst, a, b)
    }

    /// `dst = a & b`.
    pub fn and_(&mut self, dst: Reg, a: impl Into<Operand>, b: impl Into<Operand>) -> &mut Self {
        self.emit2(Op::And, dst, a, b)
    }

    /// `dst = a | b`.
    pub fn or_(&mut self, dst: Reg, a: impl Into<Operand>, b: impl Into<Operand>) -> &mut Self {
        self.emit2(Op::Or, dst, a, b)
    }

    /// `dst = a ^ b`.
    pub fn xor(&mut self, dst: Reg, a: impl Into<Operand>, b: impl Into<Operand>) -> &mut Self {
        self.emit2(Op::Xor, dst, a, b)
    }

    /// `dst = !a`.
    pub fn not(&mut self, dst: Reg, a: impl Into<Operand>) -> &mut Self {
        self.emit1(Op::Not, dst, a)
    }

    /// `dst = a << b`.
    pub fn shl(&mut self, dst: Reg, a: impl Into<Operand>, b: impl Into<Operand>) -> &mut Self {
        self.emit2(Op::Shl, dst, a, b)
    }

    /// `dst = a >> b` (logical).
    pub fn shr(&mut self, dst: Reg, a: impl Into<Operand>, b: impl Into<Operand>) -> &mut Self {
        self.emit2(Op::Shr, dst, a, b)
    }

    /// `dst = a >> b` (arithmetic).
    pub fn sra(&mut self, dst: Reg, a: impl Into<Operand>, b: impl Into<Operand>) -> &mut Self {
        self.emit2(Op::Sra, dst, a, b)
    }

    // --- floating point ------------------------------------------------------

    /// `dst = a + b` (f32).
    pub fn fadd(&mut self, dst: Reg, a: impl Into<Operand>, b: impl Into<Operand>) -> &mut Self {
        self.emit2(Op::FAdd, dst, a, b)
    }

    /// `dst = a - b` (f32).
    pub fn fsub(&mut self, dst: Reg, a: impl Into<Operand>, b: impl Into<Operand>) -> &mut Self {
        self.emit2(Op::FSub, dst, a, b)
    }

    /// `dst = a * b` (f32).
    pub fn fmul(&mut self, dst: Reg, a: impl Into<Operand>, b: impl Into<Operand>) -> &mut Self {
        self.emit2(Op::FMul, dst, a, b)
    }

    /// `dst = a * b + c` (f32 fused).
    pub fn ffma(
        &mut self,
        dst: Reg,
        a: impl Into<Operand>,
        b: impl Into<Operand>,
        c: impl Into<Operand>,
    ) -> &mut Self {
        self.emit3(Op::FFma, dst, a, b, c)
    }

    /// `dst = min(a, b)` (f32).
    pub fn fmin(&mut self, dst: Reg, a: impl Into<Operand>, b: impl Into<Operand>) -> &mut Self {
        self.emit2(Op::FMin, dst, a, b)
    }

    /// `dst = max(a, b)` (f32).
    pub fn fmax(&mut self, dst: Reg, a: impl Into<Operand>, b: impl Into<Operand>) -> &mut Self {
        self.emit2(Op::FMax, dst, a, b)
    }

    /// `dst = (f32) a`.
    pub fn i2f(&mut self, dst: Reg, a: impl Into<Operand>) -> &mut Self {
        self.emit1(Op::I2F, dst, a)
    }

    /// `dst = (i32) a` (truncating).
    pub fn f2i(&mut self, dst: Reg, a: impl Into<Operand>) -> &mut Self {
        self.emit1(Op::F2I, dst, a)
    }

    // --- predicates & select ---------------------------------------------------

    /// `pdst = a <cmp> b` on i32.
    pub fn isetp(
        &mut self,
        pdst: Pred,
        cmp: CmpOp,
        a: impl Into<Operand>,
        b: impl Into<Operand>,
    ) -> &mut Self {
        let mut i = Instruction::new(Op::ISetP);
        i.pdst = Some(pdst);
        i.cmp = Some(cmp);
        i.srcs = [Some(a.into()), Some(b.into()), None];
        self.emit(i)
    }

    /// `pdst = a <cmp> b` on f32.
    pub fn fsetp(
        &mut self,
        pdst: Pred,
        cmp: CmpOp,
        a: impl Into<Operand>,
        b: impl Into<Operand>,
    ) -> &mut Self {
        let mut i = Instruction::new(Op::FSetP);
        i.pdst = Some(pdst);
        i.cmp = Some(cmp);
        i.srcs = [Some(a.into()), Some(b.into()), None];
        self.emit(i)
    }

    /// `dst = p ? a : b`.
    pub fn sel(
        &mut self,
        dst: Reg,
        pred: Pred,
        a: impl Into<Operand>,
        b: impl Into<Operand>,
    ) -> &mut Self {
        let mut i = Instruction::new(Op::Sel);
        i.dst = Some(dst);
        i.sel_pred = Some(pred);
        i.srcs = [Some(a.into()), Some(b.into()), None];
        self.emit(i)
    }

    // --- SFU -------------------------------------------------------------------

    /// `dst = 1 / a` (f32, SFU).
    pub fn rcp(&mut self, dst: Reg, a: impl Into<Operand>) -> &mut Self {
        self.emit1(Op::Rcp, dst, a)
    }

    /// `dst = sqrt(a)` (f32, SFU).
    pub fn sqrt(&mut self, dst: Reg, a: impl Into<Operand>) -> &mut Self {
        self.emit1(Op::Sqrt, dst, a)
    }

    /// `dst = 1/sqrt(a)` (f32, SFU).
    pub fn rsqrt(&mut self, dst: Reg, a: impl Into<Operand>) -> &mut Self {
        self.emit1(Op::Rsqrt, dst, a)
    }

    /// `dst = sin(a)` (f32, SFU).
    pub fn sin(&mut self, dst: Reg, a: impl Into<Operand>) -> &mut Self {
        self.emit1(Op::Sin, dst, a)
    }

    /// `dst = cos(a)` (f32, SFU).
    pub fn cos(&mut self, dst: Reg, a: impl Into<Operand>) -> &mut Self {
        self.emit1(Op::Cos, dst, a)
    }

    /// `dst = 2^a` (f32, SFU).
    pub fn ex2(&mut self, dst: Reg, a: impl Into<Operand>) -> &mut Self {
        self.emit1(Op::Ex2, dst, a)
    }

    /// `dst = log2(a)` (f32, SFU).
    pub fn lg2(&mut self, dst: Reg, a: impl Into<Operand>) -> &mut Self {
        self.emit1(Op::Lg2, dst, a)
    }

    // --- memory ------------------------------------------------------------------

    fn emit_mem(
        &mut self,
        op: Op,
        space: MemSpace,
        dst: Option<Reg>,
        addr: Reg,
        offset: i32,
        data: Option<Operand>,
    ) -> &mut Self {
        let mut i = Instruction::new(op);
        i.space = space;
        i.dst = dst;
        i.offset = offset;
        i.srcs = [Some(addr.into()), data, None];
        self.emit(i)
    }

    /// `dst = global[addr + offset]`.
    pub fn ld(&mut self, dst: Reg, addr: Reg, offset: i32) -> &mut Self {
        self.emit_mem(Op::Ld, MemSpace::Global, Some(dst), addr, offset, None)
    }

    /// `global[addr + offset] = val`.
    pub fn st(&mut self, addr: Reg, offset: i32, val: impl Into<Operand>) -> &mut Self {
        self.emit_mem(
            Op::St,
            MemSpace::Global,
            None,
            addr,
            offset,
            Some(val.into()),
        )
    }

    /// `dst = shared[addr + offset]`.
    pub fn ld_shared(&mut self, dst: Reg, addr: Reg, offset: i32) -> &mut Self {
        self.emit_mem(Op::Ld, MemSpace::Shared, Some(dst), addr, offset, None)
    }

    /// `shared[addr + offset] = val`.
    pub fn st_shared(&mut self, addr: Reg, offset: i32, val: impl Into<Operand>) -> &mut Self {
        self.emit_mem(
            Op::St,
            MemSpace::Shared,
            None,
            addr,
            offset,
            Some(val.into()),
        )
    }

    /// `global[addr + offset] += val` atomically.
    pub fn atom_add(&mut self, addr: Reg, offset: i32, val: impl Into<Operand>) -> &mut Self {
        self.emit_mem(
            Op::AtomAdd,
            MemSpace::Global,
            None,
            addr,
            offset,
            Some(val.into()),
        )
    }

    /// `shared[addr + offset] += val` atomically.
    pub fn atom_add_shared(
        &mut self,
        addr: Reg,
        offset: i32,
        val: impl Into<Operand>,
    ) -> &mut Self {
        self.emit_mem(
            Op::AtomAdd,
            MemSpace::Shared,
            None,
            addr,
            offset,
            Some(val.into()),
        )
    }

    // --- control ------------------------------------------------------------------

    fn emit_bra(&mut self, label: impl Into<String>, guard: Option<Guard>) -> &mut Self {
        let mut i = Instruction::new(Op::Bra);
        i.guard = guard;
        i.target = Some(Pc(0)); // fixed up at build
        self.fixups.push((self.instrs.len(), label.into()));
        self.instrs.push(i);
        self.pending_guard = None;
        self
    }

    /// Unconditional (uniform) branch to `label`.
    pub fn bra(&mut self, label: impl Into<String>) -> &mut Self {
        let g = self.pending_guard.take();
        self.emit_bra(label, g)
    }

    /// Divergent branch: threads with `pred` true jump to `label`.
    pub fn bra_if(&mut self, pred: Pred, label: impl Into<String>) -> &mut Self {
        self.emit_bra(label, Some(Guard::if_true(pred)))
    }

    /// Divergent branch: threads with `pred` false jump to `label`.
    pub fn bra_ifn(&mut self, pred: Pred, label: impl Into<String>) -> &mut Self {
        self.emit_bra(label, Some(Guard::if_false(pred)))
    }

    /// Block-wide barrier.
    pub fn bar(&mut self) -> &mut Self {
        self.emit(Instruction::new(Op::Bar))
    }

    /// Thread exit.
    pub fn exit(&mut self) -> &mut Self {
        self.emit(Instruction::new(Op::Exit))
    }

    /// No-op.
    pub fn nop(&mut self) -> &mut Self {
        self.emit(Instruction::new(Op::Nop))
    }

    /// Number of instructions emitted so far.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// True if nothing has been emitted.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Resolves labels, runs CFG analysis and returns the program plus its
    /// [`LayoutReport`].
    ///
    /// # Errors
    /// Reports undefined labels, labels past the last instruction, and any
    /// instruction-validation failure.
    pub fn build_with_report(mut self) -> Result<(Program, LayoutReport), String> {
        for (idx, label) in std::mem::take(&mut self.fixups) {
            let &target = self
                .labels
                .get(&label)
                .ok_or_else(|| format!("undefined label `{label}`"))?;
            if target >= self.instrs.len() {
                return Err(format!("label `{label}` points past the last instruction"));
            }
            self.instrs[idx].target = Some(Pc(target as u32));
        }
        let (instrs, report) = analyze_and_finalize(self.instrs, self.insert_syncs)?;
        let program = Program::from_instructions(self.name, instrs, report.frontier_ordered)?;
        Ok((program, report))
    }

    /// Resolves labels, runs CFG analysis and returns the program.
    ///
    /// # Errors
    /// See [`KernelBuilder::build_with_report`].
    pub fn build(self) -> Result<Program, String> {
        self.build_with_report().map(|(p, _)| p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::{p, r};
    use crate::SpecialReg;

    #[test]
    fn if_else_gets_sync() {
        let mut k = KernelBuilder::new("ite");
        k.mov(r(0), SpecialReg::Tid);
        k.isetp(p(0), CmpOp::Lt, r(0), 16i32);
        k.bra_ifn(p(0), "else");
        k.iadd(r(1), r(0), 1i32);
        k.bra("join");
        k.label("else");
        k.iadd(r(1), r(0), 2i32);
        k.label("join");
        k.mov(r(2), r(1));
        k.exit();
        let (prog, rep) = k.build_with_report().unwrap();
        assert!(rep.frontier_ordered);
        assert_eq!(
            prog.instructions()
                .iter()
                .filter(|i| i.op == Op::Sync)
                .count(),
            1
        );
        // Branch targets are consistent after sync insertion.
        for i in prog.instructions() {
            if let Some(t) = i.target {
                assert!(t.index() < prog.len());
            }
        }
    }

    #[test]
    fn undefined_label_errors() {
        let mut k = KernelBuilder::new("bad");
        k.bra("nowhere");
        assert!(k.build().is_err());
    }

    #[test]
    fn duplicate_label_panics() {
        let result = std::panic::catch_unwind(|| {
            let mut k = KernelBuilder::new("dup");
            k.label("a");
            k.nop();
            k.label("a");
        });
        assert!(result.is_err());
    }

    #[test]
    fn trailing_label_errors() {
        let mut k = KernelBuilder::new("trail");
        k.nop();
        k.bra("end");
        k.label("end");
        assert!(k.build().is_err());
    }

    #[test]
    fn guard_applies_to_next_instruction_only() {
        let mut k = KernelBuilder::new("g");
        k.guard_t(p(1)).iadd(r(0), r(0), 1i32);
        k.iadd(r(0), r(0), 1i32);
        k.exit();
        let prog = k.build().unwrap();
        assert!(prog.instructions()[0].guard.is_some());
        assert!(prog.instructions()[1].guard.is_none());
    }

    #[test]
    fn loop_program_builds() {
        let mut k = KernelBuilder::new("loop");
        k.mov(r(0), 8i32);
        k.label("head");
        k.iadd(r(0), r(0), -1i32);
        k.isetp(p(0), CmpOp::Gt, r(0), 0i32);
        k.bra_if(p(0), "head");
        k.exit();
        let prog = k.build().unwrap();
        assert!(prog.is_frontier_ordered());
        // Back edge still targets the loop head.
        let bra = prog
            .instructions()
            .iter()
            .find(|i| i.op == Op::Bra)
            .unwrap();
        assert_eq!(prog[bra.target.unwrap()].op, Op::IAdd);
    }

    #[test]
    fn without_syncs_omits_markers() {
        let mut k = KernelBuilder::new("nos");
        k.without_syncs();
        k.isetp(p(0), CmpOp::Lt, SpecialReg::Tid, 4i32);
        k.bra_if(p(0), "skip");
        k.nop();
        k.label("skip");
        k.nop();
        k.exit();
        let prog = k.build().unwrap();
        assert!(prog.instructions().iter().all(|i| i.op != Op::Sync));
    }
}
