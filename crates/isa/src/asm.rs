//! A fluent assembler for warpweave kernels.
//!
//! [`KernelBuilder`] emits instructions with symbolic labels, then `build()`
//! resolves labels, runs the CFG pass ([`crate::cfg`]) to annotate
//! reconvergence points and insert `SYNC` markers, and returns a validated
//! [`Program`].
//!
//! # Examples
//! ```
//! use warpweave_isa::{KernelBuilder, CmpOp, r, p};
//!
//! # fn main() -> Result<(), String> {
//! let mut k = KernelBuilder::new("count_down");
//! k.mov(r(0), 10i32);
//! k.label("loop");
//! k.iadd(r(0), r(0), -1i32);
//! k.isetp(p(0), CmpOp::Gt, r(0), 0i32);
//! k.bra_if(p(0), "loop");
//! k.exit();
//! let program = k.build()?;
//! assert!(program.is_frontier_ordered());
//! # Ok(())
//! # }
//! ```

use std::collections::HashMap;

use crate::cfg::{analyze_and_finalize, LayoutReport};
use crate::instr::{Guard, Instruction, Operand};
use crate::op::{CmpOp, MemSpace, Op};
use crate::program::{Pc, Program};
use crate::reg::{Pred, Reg};

/// Incrementally builds a kernel; see the [module docs](self).
#[derive(Debug, Clone)]
pub struct KernelBuilder {
    name: String,
    instrs: Vec<Instruction>,
    labels: HashMap<String, usize>,
    fixups: Vec<(usize, String)>,
    pending_guard: Option<Guard>,
    insert_syncs: bool,
}

impl KernelBuilder {
    /// Starts a new kernel named `name`.
    pub fn new(name: impl Into<String>) -> Self {
        KernelBuilder {
            name: name.into(),
            instrs: Vec::new(),
            labels: HashMap::new(),
            fixups: Vec::new(),
            pending_guard: None,
            insert_syncs: true,
        }
    }

    /// Disables automatic `SYNC` insertion at reconvergence points.
    /// (Programs still run on every architecture; SBI reconvergence
    /// constraints simply find no synchronisation markers.)
    pub fn without_syncs(&mut self) -> &mut Self {
        self.insert_syncs = false;
        self
    }

    /// Defines `name` at the current position (the next emitted instruction).
    pub fn label(&mut self, name: impl Into<String>) -> &mut Self {
        let name = name.into();
        assert!(
            self.labels
                .insert(name.clone(), self.instrs.len())
                .is_none(),
            "label `{name}` defined twice"
        );
        self
    }

    /// Applies an `@p` guard to the next emitted instruction.
    pub fn guard_t(&mut self, pred: Pred) -> &mut Self {
        self.pending_guard = Some(Guard::if_true(pred));
        self
    }

    /// Applies an `@!p` guard to the next emitted instruction.
    pub fn guard_f(&mut self, pred: Pred) -> &mut Self {
        self.pending_guard = Some(Guard::if_false(pred));
        self
    }

    fn emit(&mut self, mut i: Instruction) -> &mut Self {
        if let Some(g) = self.pending_guard.take() {
            i.guard = Some(g);
        }
        self.instrs.push(i);
        self
    }

    fn emit3(
        &mut self,
        op: Op,
        dst: Reg,
        a: impl Into<Operand>,
        b: impl Into<Operand>,
        c: impl Into<Operand>,
    ) -> &mut Self {
        let mut i = Instruction::new(op);
        i.dst = Some(dst);
        i.srcs = [Some(a.into()), Some(b.into()), Some(c.into())];
        self.emit(i)
    }

    fn emit2(
        &mut self,
        op: Op,
        dst: Reg,
        a: impl Into<Operand>,
        b: impl Into<Operand>,
    ) -> &mut Self {
        let mut i = Instruction::new(op);
        i.dst = Some(dst);
        i.srcs = [Some(a.into()), Some(b.into()), None];
        self.emit(i)
    }

    fn emit1(&mut self, op: Op, dst: Reg, a: impl Into<Operand>) -> &mut Self {
        let mut i = Instruction::new(op);
        i.dst = Some(dst);
        i.srcs = [Some(a.into()), None, None];
        self.emit(i)
    }

    // --- moves & integer ALU -------------------------------------------------

    /// `dst = src`.
    pub fn mov(&mut self, dst: Reg, src: impl Into<Operand>) -> &mut Self {
        self.emit1(Op::Mov, dst, src)
    }

    /// `dst = a + b` (i32).
    pub fn iadd(&mut self, dst: Reg, a: impl Into<Operand>, b: impl Into<Operand>) -> &mut Self {
        self.emit2(Op::IAdd, dst, a, b)
    }

    /// `dst = a - b` (i32).
    pub fn isub(&mut self, dst: Reg, a: impl Into<Operand>, b: impl Into<Operand>) -> &mut Self {
        self.emit2(Op::ISub, dst, a, b)
    }

    /// `dst = a * b` (i32, low word).
    pub fn imul(&mut self, dst: Reg, a: impl Into<Operand>, b: impl Into<Operand>) -> &mut Self {
        self.emit2(Op::IMul, dst, a, b)
    }

    /// `dst = a * b + c` (i32).
    pub fn imad(
        &mut self,
        dst: Reg,
        a: impl Into<Operand>,
        b: impl Into<Operand>,
        c: impl Into<Operand>,
    ) -> &mut Self {
        self.emit3(Op::IMad, dst, a, b, c)
    }

    /// `dst = min(a, b)` signed.
    pub fn imin(&mut self, dst: Reg, a: impl Into<Operand>, b: impl Into<Operand>) -> &mut Self {
        self.emit2(Op::IMin, dst, a, b)
    }

    /// `dst = max(a, b)` signed.
    pub fn imax(&mut self, dst: Reg, a: impl Into<Operand>, b: impl Into<Operand>) -> &mut Self {
        self.emit2(Op::IMax, dst, a, b)
    }

    /// `dst = a & b`.
    pub fn and_(&mut self, dst: Reg, a: impl Into<Operand>, b: impl Into<Operand>) -> &mut Self {
        self.emit2(Op::And, dst, a, b)
    }

    /// `dst = a | b`.
    pub fn or_(&mut self, dst: Reg, a: impl Into<Operand>, b: impl Into<Operand>) -> &mut Self {
        self.emit2(Op::Or, dst, a, b)
    }

    /// `dst = a ^ b`.
    pub fn xor(&mut self, dst: Reg, a: impl Into<Operand>, b: impl Into<Operand>) -> &mut Self {
        self.emit2(Op::Xor, dst, a, b)
    }

    /// `dst = !a`.
    pub fn not(&mut self, dst: Reg, a: impl Into<Operand>) -> &mut Self {
        self.emit1(Op::Not, dst, a)
    }

    /// `dst = a << b`.
    pub fn shl(&mut self, dst: Reg, a: impl Into<Operand>, b: impl Into<Operand>) -> &mut Self {
        self.emit2(Op::Shl, dst, a, b)
    }

    /// `dst = a >> b` (logical).
    pub fn shr(&mut self, dst: Reg, a: impl Into<Operand>, b: impl Into<Operand>) -> &mut Self {
        self.emit2(Op::Shr, dst, a, b)
    }

    /// `dst = a >> b` (arithmetic).
    pub fn sra(&mut self, dst: Reg, a: impl Into<Operand>, b: impl Into<Operand>) -> &mut Self {
        self.emit2(Op::Sra, dst, a, b)
    }

    // --- floating point ------------------------------------------------------

    /// `dst = a + b` (f32).
    pub fn fadd(&mut self, dst: Reg, a: impl Into<Operand>, b: impl Into<Operand>) -> &mut Self {
        self.emit2(Op::FAdd, dst, a, b)
    }

    /// `dst = a - b` (f32).
    pub fn fsub(&mut self, dst: Reg, a: impl Into<Operand>, b: impl Into<Operand>) -> &mut Self {
        self.emit2(Op::FSub, dst, a, b)
    }

    /// `dst = a * b` (f32).
    pub fn fmul(&mut self, dst: Reg, a: impl Into<Operand>, b: impl Into<Operand>) -> &mut Self {
        self.emit2(Op::FMul, dst, a, b)
    }

    /// `dst = a * b + c` (f32 fused).
    pub fn ffma(
        &mut self,
        dst: Reg,
        a: impl Into<Operand>,
        b: impl Into<Operand>,
        c: impl Into<Operand>,
    ) -> &mut Self {
        self.emit3(Op::FFma, dst, a, b, c)
    }

    /// `dst = min(a, b)` (f32).
    pub fn fmin(&mut self, dst: Reg, a: impl Into<Operand>, b: impl Into<Operand>) -> &mut Self {
        self.emit2(Op::FMin, dst, a, b)
    }

    /// `dst = max(a, b)` (f32).
    pub fn fmax(&mut self, dst: Reg, a: impl Into<Operand>, b: impl Into<Operand>) -> &mut Self {
        self.emit2(Op::FMax, dst, a, b)
    }

    /// `dst = (f32) a`.
    pub fn i2f(&mut self, dst: Reg, a: impl Into<Operand>) -> &mut Self {
        self.emit1(Op::I2F, dst, a)
    }

    /// `dst = (i32) a` (truncating).
    pub fn f2i(&mut self, dst: Reg, a: impl Into<Operand>) -> &mut Self {
        self.emit1(Op::F2I, dst, a)
    }

    // --- predicates & select ---------------------------------------------------

    /// `pdst = a <cmp> b` on i32.
    pub fn isetp(
        &mut self,
        pdst: Pred,
        cmp: CmpOp,
        a: impl Into<Operand>,
        b: impl Into<Operand>,
    ) -> &mut Self {
        let mut i = Instruction::new(Op::ISetP);
        i.pdst = Some(pdst);
        i.cmp = Some(cmp);
        i.srcs = [Some(a.into()), Some(b.into()), None];
        self.emit(i)
    }

    /// `pdst = a <cmp> b` on f32.
    pub fn fsetp(
        &mut self,
        pdst: Pred,
        cmp: CmpOp,
        a: impl Into<Operand>,
        b: impl Into<Operand>,
    ) -> &mut Self {
        let mut i = Instruction::new(Op::FSetP);
        i.pdst = Some(pdst);
        i.cmp = Some(cmp);
        i.srcs = [Some(a.into()), Some(b.into()), None];
        self.emit(i)
    }

    /// `dst = p ? a : b`.
    pub fn sel(
        &mut self,
        dst: Reg,
        pred: Pred,
        a: impl Into<Operand>,
        b: impl Into<Operand>,
    ) -> &mut Self {
        let mut i = Instruction::new(Op::Sel);
        i.dst = Some(dst);
        i.sel_pred = Some(pred);
        i.srcs = [Some(a.into()), Some(b.into()), None];
        self.emit(i)
    }

    // --- SFU -------------------------------------------------------------------

    /// `dst = 1 / a` (f32, SFU).
    pub fn rcp(&mut self, dst: Reg, a: impl Into<Operand>) -> &mut Self {
        self.emit1(Op::Rcp, dst, a)
    }

    /// `dst = sqrt(a)` (f32, SFU).
    pub fn sqrt(&mut self, dst: Reg, a: impl Into<Operand>) -> &mut Self {
        self.emit1(Op::Sqrt, dst, a)
    }

    /// `dst = 1/sqrt(a)` (f32, SFU).
    pub fn rsqrt(&mut self, dst: Reg, a: impl Into<Operand>) -> &mut Self {
        self.emit1(Op::Rsqrt, dst, a)
    }

    /// `dst = sin(a)` (f32, SFU).
    pub fn sin(&mut self, dst: Reg, a: impl Into<Operand>) -> &mut Self {
        self.emit1(Op::Sin, dst, a)
    }

    /// `dst = cos(a)` (f32, SFU).
    pub fn cos(&mut self, dst: Reg, a: impl Into<Operand>) -> &mut Self {
        self.emit1(Op::Cos, dst, a)
    }

    /// `dst = 2^a` (f32, SFU).
    pub fn ex2(&mut self, dst: Reg, a: impl Into<Operand>) -> &mut Self {
        self.emit1(Op::Ex2, dst, a)
    }

    /// `dst = log2(a)` (f32, SFU).
    pub fn lg2(&mut self, dst: Reg, a: impl Into<Operand>) -> &mut Self {
        self.emit1(Op::Lg2, dst, a)
    }

    // --- memory ------------------------------------------------------------------

    fn emit_mem(
        &mut self,
        op: Op,
        space: MemSpace,
        dst: Option<Reg>,
        addr: Reg,
        offset: i32,
        data: Option<Operand>,
    ) -> &mut Self {
        let mut i = Instruction::new(op);
        i.space = space;
        i.dst = dst;
        i.offset = offset;
        i.srcs = [Some(addr.into()), data, None];
        self.emit(i)
    }

    /// `dst = global[addr + offset]`.
    pub fn ld(&mut self, dst: Reg, addr: Reg, offset: i32) -> &mut Self {
        self.emit_mem(Op::Ld, MemSpace::Global, Some(dst), addr, offset, None)
    }

    /// `global[addr + offset] = val`.
    pub fn st(&mut self, addr: Reg, offset: i32, val: impl Into<Operand>) -> &mut Self {
        self.emit_mem(
            Op::St,
            MemSpace::Global,
            None,
            addr,
            offset,
            Some(val.into()),
        )
    }

    /// `dst = shared[addr + offset]`.
    pub fn ld_shared(&mut self, dst: Reg, addr: Reg, offset: i32) -> &mut Self {
        self.emit_mem(Op::Ld, MemSpace::Shared, Some(dst), addr, offset, None)
    }

    /// `shared[addr + offset] = val`.
    pub fn st_shared(&mut self, addr: Reg, offset: i32, val: impl Into<Operand>) -> &mut Self {
        self.emit_mem(
            Op::St,
            MemSpace::Shared,
            None,
            addr,
            offset,
            Some(val.into()),
        )
    }

    /// `global[addr + offset] += val` atomically.
    pub fn atom_add(&mut self, addr: Reg, offset: i32, val: impl Into<Operand>) -> &mut Self {
        self.emit_mem(
            Op::AtomAdd,
            MemSpace::Global,
            None,
            addr,
            offset,
            Some(val.into()),
        )
    }

    /// `shared[addr + offset] += val` atomically.
    pub fn atom_add_shared(
        &mut self,
        addr: Reg,
        offset: i32,
        val: impl Into<Operand>,
    ) -> &mut Self {
        self.emit_mem(
            Op::AtomAdd,
            MemSpace::Shared,
            None,
            addr,
            offset,
            Some(val.into()),
        )
    }

    // --- control ------------------------------------------------------------------

    fn emit_bra(&mut self, label: impl Into<String>, guard: Option<Guard>) -> &mut Self {
        let mut i = Instruction::new(Op::Bra);
        i.guard = guard;
        i.target = Some(Pc(0)); // fixed up at build
        self.fixups.push((self.instrs.len(), label.into()));
        self.instrs.push(i);
        self.pending_guard = None;
        self
    }

    /// Unconditional (uniform) branch to `label`.
    pub fn bra(&mut self, label: impl Into<String>) -> &mut Self {
        let g = self.pending_guard.take();
        self.emit_bra(label, g)
    }

    /// Divergent branch: threads with `pred` true jump to `label`.
    pub fn bra_if(&mut self, pred: Pred, label: impl Into<String>) -> &mut Self {
        self.emit_bra(label, Some(Guard::if_true(pred)))
    }

    /// Divergent branch: threads with `pred` false jump to `label`.
    pub fn bra_ifn(&mut self, pred: Pred, label: impl Into<String>) -> &mut Self {
        self.emit_bra(label, Some(Guard::if_false(pred)))
    }

    /// Block-wide barrier.
    pub fn bar(&mut self) -> &mut Self {
        self.emit(Instruction::new(Op::Bar))
    }

    /// Thread exit.
    pub fn exit(&mut self) -> &mut Self {
        self.emit(Instruction::new(Op::Exit))
    }

    /// No-op.
    pub fn nop(&mut self) -> &mut Self {
        self.emit(Instruction::new(Op::Nop))
    }

    /// Number of instructions emitted so far.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// True if nothing has been emitted.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Resolves labels, runs CFG analysis and returns the program plus its
    /// [`LayoutReport`].
    ///
    /// # Errors
    /// Reports undefined labels, labels past the last instruction, and any
    /// instruction-validation failure.
    pub fn build_with_report(mut self) -> Result<(Program, LayoutReport), String> {
        for (idx, label) in std::mem::take(&mut self.fixups) {
            let &target = self
                .labels
                .get(&label)
                .ok_or_else(|| format!("undefined label `{label}`"))?;
            if target >= self.instrs.len() {
                return Err(format!("label `{label}` points past the last instruction"));
            }
            self.instrs[idx].target = Some(Pc(target as u32));
        }
        let (instrs, report) = analyze_and_finalize(self.instrs, self.insert_syncs)?;
        let program = Program::from_instructions(self.name, instrs, report.frontier_ordered)?;
        Ok((program, report))
    }

    /// Resolves labels, runs CFG analysis and returns the program.
    ///
    /// # Errors
    /// See [`KernelBuilder::build_with_report`].
    pub fn build(self) -> Result<Program, String> {
        self.build_with_report().map(|(p, _)| p)
    }
}

// --- text round-trip ---------------------------------------------------------
//
// A lossless, line-oriented text form of [`Program`] used by the fuzzer's
// failure reproducers (`crate::fuzz::Reproducer`) and the committed corpus
// under `tests/corpus/`. Unlike the lossy `Display` impl, every
// [`Instruction`] field survives: guards (`@p0` / `@!p0` prefixes),
// comparison suffixes (`isetp.lt`), the shared space (`.shared`), memory
// offsets (`[r1+4]`), branch targets (`@7`), reconvergence annotations
// (`reconv=@9`) and `SYNC` payloads (`pcdiv=@6`).
//
// One canonical-form assumption: source operands are packed from slot 0
// (which every constructor in this crate guarantees).

/// Every opcode, for mnemonic resolution.
const ALL_OPS: [Op; 40] = [
    Op::Mov,
    Op::IAdd,
    Op::ISub,
    Op::IMul,
    Op::IMad,
    Op::IMin,
    Op::IMax,
    Op::And,
    Op::Or,
    Op::Xor,
    Op::Not,
    Op::Shl,
    Op::Shr,
    Op::Sra,
    Op::FAdd,
    Op::FSub,
    Op::FMul,
    Op::FFma,
    Op::FMin,
    Op::FMax,
    Op::I2F,
    Op::F2I,
    Op::ISetP,
    Op::FSetP,
    Op::Sel,
    Op::Rcp,
    Op::Sqrt,
    Op::Rsqrt,
    Op::Sin,
    Op::Cos,
    Op::Ex2,
    Op::Lg2,
    Op::Ld,
    Op::St,
    Op::AtomAdd,
    Op::Bra,
    Op::Sync,
    Op::Bar,
    Op::Exit,
    Op::Nop,
];

fn operand_text(o: Operand) -> String {
    match o {
        Operand::Reg(r) => r.to_string(),
        Operand::Imm(v) => format!("0x{v:x}"),
        Operand::Special(s) => s.to_string(),
        Operand::Param(i) => format!("param[{i}]"),
    }
}

/// Serialises one instruction to its canonical text line.
fn instr_to_text(i: &Instruction) -> String {
    let mut s = String::new();
    if let Some(g) = i.guard {
        s.push_str(&format!("{g} "));
    }
    s.push_str(i.op.mnemonic());
    if let Some(c) = i.cmp {
        s.push_str(&format!(".{c}"));
    }
    if i.space == MemSpace::Shared {
        s.push_str(".shared");
    }
    let mut toks: Vec<String> = Vec::new();
    if let Some(d) = i.dst {
        toks.push(d.to_string());
    }
    if let Some(pd) = i.pdst {
        toks.push(pd.to_string());
    }
    if let Some(sp) = i.sel_pred {
        toks.push(sp.to_string());
    }
    let is_mem = i.op.is_memory();
    for (idx, src) in i.srcs.iter().enumerate() {
        let Some(src) = src else { continue };
        if is_mem && idx == 0 {
            toks.push(format!("[{}{:+}]", operand_text(*src), i.offset));
        } else {
            toks.push(operand_text(*src));
        }
    }
    if let Some(t) = i.target {
        toks.push(format!("@{}", t.0));
    }
    if let Some(rc) = i.reconv {
        toks.push(format!("reconv=@{}", rc.0));
    }
    if let Some(d) = i.sync_pcdiv {
        toks.push(format!("pcdiv=@{}", d.0));
    }
    if !is_mem && i.offset != 0 {
        toks.push(format!("off={}", i.offset));
    }
    if !toks.is_empty() {
        s.push(' ');
        s.push_str(&toks.join(", "));
    }
    s
}

/// Serialises a [`Program`] to the lossless text form parsed back by
/// [`program_from_text`] — the reproducer-serialisation substrate.
pub fn program_to_text(p: &Program) -> String {
    let mut out = String::from("; warpweave-asm v1\n");
    out.push_str(&format!(".kernel {}\n", p.name()));
    out.push_str(&format!(".frontier_ordered {}\n", p.is_frontier_ordered()));
    for i in p.instructions() {
        out.push_str(&instr_to_text(i));
        out.push('\n');
    }
    out
}

fn parse_pc(tok: &str) -> Result<Pc, String> {
    tok.strip_prefix('@')
        .and_then(|d| d.parse::<u32>().ok())
        .map(Pc)
        .ok_or_else(|| format!("bad pc token `{tok}`"))
}

fn parse_reg(tok: &str) -> Option<Reg> {
    let idx: u8 = tok.strip_prefix('r')?.parse().ok()?;
    ((idx as usize) < crate::reg::NUM_REGS).then(|| Reg::new(idx))
}

fn parse_pred_tok(tok: &str) -> Option<Pred> {
    let idx: u8 = tok.strip_prefix('p')?.parse().ok()?;
    ((idx as usize) < crate::reg::NUM_PREDS).then(|| Pred::new(idx))
}

fn parse_operand(tok: &str) -> Result<Operand, String> {
    use crate::reg::SpecialReg::*;
    match tok {
        "%tid" => return Ok(Operand::Special(Tid)),
        "%ctaid" => return Ok(Operand::Special(CtaId)),
        "%ntid" => return Ok(Operand::Special(NTid)),
        "%nctaid" => return Ok(Operand::Special(NCtaId)),
        "%laneid" => return Ok(Operand::Special(LaneId)),
        "%warpid" => return Ok(Operand::Special(WarpId)),
        _ => {}
    }
    if let Some(inner) = tok.strip_prefix("param[").and_then(|t| t.strip_suffix(']')) {
        let idx: u8 = inner
            .parse()
            .map_err(|e| format!("bad param index `{inner}`: {e}"))?;
        return Ok(Operand::Param(idx));
    }
    if let Some(hex) = tok.strip_prefix("0x").or_else(|| tok.strip_prefix("0X")) {
        let v = u32::from_str_radix(hex, 16).map_err(|e| format!("bad hex `{tok}`: {e}"))?;
        return Ok(Operand::Imm(v));
    }
    if let Some(r) = parse_reg(tok) {
        return Ok(Operand::Reg(r));
    }
    if let Ok(v) = tok.parse::<i64>() {
        return Ok(Operand::Imm(v as i32 as u32));
    }
    Err(format!("unrecognised operand `{tok}`"))
}

/// Parses a `[<operand><+/-offset>]` memory address token.
fn parse_bracket(tok: &str) -> Result<(Operand, i32), String> {
    let inner = tok
        .strip_prefix('[')
        .and_then(|t| t.strip_suffix(']'))
        .ok_or_else(|| format!("malformed address `{tok}`"))?;
    let at = inner
        .rfind(['+', '-'])
        .ok_or_else(|| format!("address `{tok}` lacks an offset"))?;
    let (base, off) = inner.split_at(at);
    let operand = parse_operand(base)?;
    let offset: i32 = off
        .parse()
        .map_err(|e| format!("bad offset `{off}` in `{tok}`: {e}"))?;
    Ok((operand, offset))
}

fn parse_guard(tok: &str) -> Result<Guard, String> {
    if let Some(rest) = tok.strip_prefix("@!") {
        parse_pred_tok(rest)
            .map(Guard::if_false)
            .ok_or_else(|| format!("bad guard `{tok}`"))
    } else if let Some(rest) = tok.strip_prefix('@') {
        parse_pred_tok(rest)
            .map(Guard::if_true)
            .ok_or_else(|| format!("bad guard `{tok}`"))
    } else {
        Err(format!("bad guard `{tok}`"))
    }
}

fn parse_cmp(part: &str) -> Option<CmpOp> {
    Some(match part {
        "eq" => CmpOp::Eq,
        "ne" => CmpOp::Ne,
        "lt" => CmpOp::Lt,
        "le" => CmpOp::Le,
        "gt" => CmpOp::Gt,
        "ge" => CmpOp::Ge,
        _ => return None,
    })
}

/// Resolves a (possibly suffixed) mnemonic token: longest opcode match,
/// then `.cmp` / `.shared` suffix parts.
fn resolve_mnemonic(tok: &str) -> Result<(Op, Option<CmpOp>, bool), String> {
    let mut best: Option<(&'static str, Op)> = None;
    for op in ALL_OPS {
        let m = op.mnemonic();
        let matches = tok == m
            || (tok.len() > m.len() && tok.starts_with(m) && tok.as_bytes()[m.len()] == b'.');
        if matches && best.is_none_or(|(bm, _)| m.len() > bm.len()) {
            best = Some((m, op));
        }
    }
    let (m, op) = best.ok_or_else(|| format!("unknown mnemonic `{tok}`"))?;
    let mut cmp = None;
    let mut shared = false;
    if tok.len() > m.len() {
        for part in tok[m.len() + 1..].split('.') {
            if part == "shared" {
                shared = true;
            } else if let Some(c) = parse_cmp(part) {
                cmp = Some(c);
            } else {
                return Err(format!("unknown suffix `.{part}` on `{tok}`"));
            }
        }
    }
    Ok((op, cmp, shared))
}

fn parse_instr_line(line: &str) -> Result<Instruction, String> {
    let mut rest = line;
    let mut guard = None;
    if rest.starts_with("@!") || (rest.starts_with('@') && rest[1..].starts_with('p')) {
        let (g, after) = rest
            .split_once(char::is_whitespace)
            .ok_or("guard without an opcode")?;
        guard = Some(parse_guard(g)?);
        rest = after.trim_start();
    }
    let (mn, args) = match rest.split_once(char::is_whitespace) {
        Some((a, b)) => (a, b.trim()),
        None => (rest, ""),
    };
    let (op, cmp, shared) = resolve_mnemonic(mn)?;
    let mut i = Instruction::new(op);
    i.guard = guard;
    i.cmp = cmp;
    if shared {
        i.space = MemSpace::Shared;
    }
    // Destination-first opcodes (AtomAdd's destination is optional: a reg
    // token before the address bracket).
    let dst_first = !matches!(
        op,
        Op::ISetP | Op::FSetP | Op::St | Op::Bra | Op::Sync | Op::Bar | Op::Exit | Op::Nop
    );
    let mut next_src = 0usize;
    if !args.is_empty() {
        for tok in args.split(',') {
            let tok = tok.trim();
            if let Some(v) = tok.strip_prefix("reconv=") {
                i.reconv = Some(parse_pc(v)?);
            } else if let Some(v) = tok.strip_prefix("pcdiv=") {
                i.sync_pcdiv = Some(parse_pc(v)?);
            } else if let Some(v) = tok.strip_prefix("off=") {
                i.offset = v.parse().map_err(|e| format!("bad off `{v}`: {e}"))?;
            } else if tok.starts_with('[') {
                let (base, off) = parse_bracket(tok)?;
                i.srcs[0] = Some(base);
                i.offset = off;
                next_src = next_src.max(1);
            } else if tok.starts_with('@') {
                i.target = Some(parse_pc(tok)?);
            } else if let Some(pd) = parse_pred_tok(tok) {
                match op {
                    Op::ISetP | Op::FSetP if i.pdst.is_none() => i.pdst = Some(pd),
                    Op::Sel if i.sel_pred.is_none() => i.sel_pred = Some(pd),
                    _ => return Err(format!("unexpected predicate `{tok}` for {op}")),
                }
            } else {
                let operand = parse_operand(tok)?;
                let take_dst = dst_first
                    && i.dst.is_none()
                    && matches!(operand, Operand::Reg(_))
                    && (op != Op::AtomAdd || i.srcs[0].is_none());
                if take_dst {
                    i.dst = operand.reg();
                } else {
                    if next_src >= 3 {
                        return Err(format!("too many sources on `{line}`"));
                    }
                    i.srcs[next_src] = Some(operand);
                    next_src += 1;
                }
            }
        }
    }
    Ok(i)
}

/// Parses the text form produced by [`program_to_text`] back into a
/// validated [`Program`].
///
/// # Errors
/// Reports the first malformed line (1-based), a missing `.kernel`
/// directive, and any [`Program::from_instructions`] validation failure.
pub fn program_from_text(text: &str) -> Result<Program, String> {
    let mut name: Option<String> = None;
    let mut frontier = true;
    let mut instrs = Vec::new();
    for (ln, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with(';') || line.starts_with("//") {
            continue;
        }
        if let Some(v) = line.strip_prefix(".kernel") {
            name = Some(v.trim().to_string());
            continue;
        }
        if let Some(v) = line.strip_prefix(".frontier_ordered") {
            frontier = v
                .trim()
                .parse()
                .map_err(|e| format!("line {}: bad .frontier_ordered: {e}", ln + 1))?;
            continue;
        }
        if line.starts_with('.') {
            return Err(format!("line {}: unknown directive `{line}`", ln + 1));
        }
        instrs.push(parse_instr_line(line).map_err(|e| format!("line {}: {e}", ln + 1))?);
    }
    Program::from_instructions(name.ok_or("missing .kernel directive")?, instrs, frontier)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::{p, r};
    use crate::SpecialReg;

    #[test]
    fn if_else_gets_sync() {
        let mut k = KernelBuilder::new("ite");
        k.mov(r(0), SpecialReg::Tid);
        k.isetp(p(0), CmpOp::Lt, r(0), 16i32);
        k.bra_ifn(p(0), "else");
        k.iadd(r(1), r(0), 1i32);
        k.bra("join");
        k.label("else");
        k.iadd(r(1), r(0), 2i32);
        k.label("join");
        k.mov(r(2), r(1));
        k.exit();
        let (prog, rep) = k.build_with_report().unwrap();
        assert!(rep.frontier_ordered);
        assert_eq!(
            prog.instructions()
                .iter()
                .filter(|i| i.op == Op::Sync)
                .count(),
            1
        );
        // Branch targets are consistent after sync insertion.
        for i in prog.instructions() {
            if let Some(t) = i.target {
                assert!(t.index() < prog.len());
            }
        }
    }

    #[test]
    fn undefined_label_errors() {
        let mut k = KernelBuilder::new("bad");
        k.bra("nowhere");
        assert!(k.build().is_err());
    }

    #[test]
    fn duplicate_label_panics() {
        let result = std::panic::catch_unwind(|| {
            let mut k = KernelBuilder::new("dup");
            k.label("a");
            k.nop();
            k.label("a");
        });
        assert!(result.is_err());
    }

    #[test]
    fn trailing_label_errors() {
        let mut k = KernelBuilder::new("trail");
        k.nop();
        k.bra("end");
        k.label("end");
        assert!(k.build().is_err());
    }

    #[test]
    fn guard_applies_to_next_instruction_only() {
        let mut k = KernelBuilder::new("g");
        k.guard_t(p(1)).iadd(r(0), r(0), 1i32);
        k.iadd(r(0), r(0), 1i32);
        k.exit();
        let prog = k.build().unwrap();
        assert!(prog.instructions()[0].guard.is_some());
        assert!(prog.instructions()[1].guard.is_none());
    }

    #[test]
    fn loop_program_builds() {
        let mut k = KernelBuilder::new("loop");
        k.mov(r(0), 8i32);
        k.label("head");
        k.iadd(r(0), r(0), -1i32);
        k.isetp(p(0), CmpOp::Gt, r(0), 0i32);
        k.bra_if(p(0), "head");
        k.exit();
        let prog = k.build().unwrap();
        assert!(prog.is_frontier_ordered());
        // Back edge still targets the loop head.
        let bra = prog
            .instructions()
            .iter()
            .find(|i| i.op == Op::Bra)
            .unwrap();
        assert_eq!(prog[bra.target.unwrap()].op, Op::IAdd);
    }

    fn assert_roundtrip(prog: &Program) {
        let text = program_to_text(prog);
        let back =
            program_from_text(&text).unwrap_or_else(|e| panic!("reparse failed: {e}\n---\n{text}"));
        assert_eq!(back.name(), prog.name(), "{text}");
        assert_eq!(
            back.is_frontier_ordered(),
            prog.is_frontier_ordered(),
            "{text}"
        );
        assert_eq!(back.instructions(), prog.instructions(), "{text}");
    }

    #[test]
    fn text_roundtrip_structured_kernel() {
        let mut k = KernelBuilder::new("roundtrip");
        k.mov(r(0), SpecialReg::Tid);
        k.isetp(p(0), CmpOp::Lt, r(0), 16i32);
        k.bra_ifn(p(0), "else");
        k.guard_t(p(1)).iadd(r(1), r(0), 1i32);
        k.bra("join");
        k.label("else");
        k.sel(r(1), p(2), r(0), Operand::Param(1));
        k.label("join");
        k.ld(r(2), r(1), -8);
        k.ld_shared(r(3), r(1), 4);
        k.st(r(1), 12, r(2));
        k.st_shared(r(1), 0, 7i32);
        k.atom_add(r(1), 4, r(3));
        k.atom_add_shared(r(1), 0, 1i32);
        k.bar();
        k.fsetp(p(3), CmpOp::Ge, r(2), 1.5f32);
        k.rcp(r(4), r(2));
        k.exit();
        assert_roundtrip(&k.build().unwrap());
    }

    #[test]
    fn text_roundtrip_loop_with_syncs() {
        let mut k = KernelBuilder::new("loop rt");
        k.mov(r(0), 8i32);
        k.label("head");
        k.isetp(p(0), CmpOp::Lt, SpecialReg::LaneId, 7i32);
        k.bra_if(p(0), "skip");
        k.iadd(r(1), r(1), 1i32);
        k.label("skip");
        k.iadd(r(0), r(0), -1i32);
        k.isetp(p(0), CmpOp::Gt, r(0), 0i32);
        k.bra_if(p(0), "head");
        k.exit();
        let prog = k.build().unwrap();
        // The CFG pass annotated reconv/pcdiv fields; they must survive.
        assert!(prog.instructions().iter().any(|i| i.reconv.is_some()));
        assert_roundtrip(&prog);
    }

    #[test]
    fn text_roundtrip_exotic_but_valid_instructions() {
        // Forms the builder never emits but Instruction permits: an
        // atomic with a destination (old-value capture), an
        // immediate-addressed load, and a guarded shared store.
        let mut atom = Instruction::new(Op::AtomAdd);
        atom.dst = Some(r(9));
        atom.srcs = [Some(r(1).into()), Some(Operand::Imm(3)), None];
        atom.offset = -4;
        let mut ld = Instruction::new(Op::Ld);
        ld.dst = Some(r(2));
        ld.srcs[0] = Some(Operand::Imm(0x80));
        ld.offset = 16;
        let mut st = Instruction::new(Op::St);
        st.guard = Some(Guard::if_false(p(5)));
        st.space = MemSpace::Shared;
        st.srcs = [
            Some(Operand::Special(SpecialReg::LaneId)),
            Some(Operand::Param(3)),
            None,
        ];
        let prog = Program::from_instructions(
            "exotic",
            vec![atom, ld, st, Instruction::new(Op::Exit)],
            false,
        )
        .unwrap();
        assert_roundtrip(&prog);
    }

    #[test]
    fn text_parse_rejects_garbage() {
        assert!(program_from_text(".kernel x\nbogus r1, r2\n").is_err());
        assert!(
            program_from_text("mov r1, 0x1\n").is_err(),
            "missing .kernel"
        );
        assert!(program_from_text(".kernel x\nmov r99, 0x1\n").is_err());
        assert!(program_from_text(".kernel x\n.mystery\n").is_err());
    }

    #[test]
    fn without_syncs_omits_markers() {
        let mut k = KernelBuilder::new("nos");
        k.without_syncs();
        k.isetp(p(0), CmpOp::Lt, SpecialReg::Tid, 4i32);
        k.bra_if(p(0), "skip");
        k.nop();
        k.label("skip");
        k.nop();
        k.exit();
        let prog = k.build().unwrap();
        assert!(prog.instructions().iter().all(|i| i.op != Op::Sync));
    }
}
