//! Control-flow analysis: basic blocks, dominators, post-dominators,
//! reconvergence-point annotation and `SYNC` insertion.
//!
//! This pass plays the role of the compiler support the paper assumes
//! (§3.3): for every potentially-divergent branch it
//!
//! 1. computes the reconvergence point as the branch block's immediate
//!    post-dominator (the PDOM stack architecture pops there),
//! 2. inserts a [`crate::op::Op::Sync`] instruction at each reconvergence
//!    point whose payload `PCdiv` is the *last instruction of the immediate
//!    dominator* of the reconvergence block, and
//! 3. reports whether the code layout is thread-frontier ordered (every
//!    reconvergence point at a higher address than its divergence point).

use crate::instr::Instruction;
use crate::op::Op;
use crate::program::Pc;

/// A basic block: instructions `[start, end)` plus CFG edges.
#[derive(Debug, Clone)]
pub struct Block {
    /// Index of the first instruction.
    pub start: usize,
    /// One past the last instruction.
    pub end: usize,
    /// Successor block ids (`cfg.exit_node()` denotes the virtual exit).
    pub succs: Vec<usize>,
    /// Predecessor block ids.
    pub preds: Vec<usize>,
}

/// A control-flow graph over a linear instruction sequence.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// Basic blocks in address order.
    pub blocks: Vec<Block>,
}

impl Cfg {
    /// The id of the virtual exit node (one past the last real block).
    pub fn exit_node(&self) -> usize {
        self.blocks.len()
    }

    /// The block containing instruction `idx`, by binary search over the
    /// address-ordered block starts (blocks partition `[0, n)`, so the
    /// owning block is the last one whose `start <= idx`).
    pub fn block_containing(&self, idx: usize) -> usize {
        debug_assert!(!self.blocks.is_empty() && idx < self.blocks[self.blocks.len() - 1].end);
        self.blocks.partition_point(|b| b.start <= idx) - 1
    }

    /// True iff instruction `idx` is the first instruction of its block.
    pub fn is_leader(&self, idx: usize) -> bool {
        self.blocks.binary_search_by_key(&idx, |b| b.start).is_ok()
    }
}

/// Builds the CFG of an instruction sequence whose branch targets are
/// instruction indices.
#[allow(clippy::needless_range_loop)] // index math over leaders is clearer
pub fn build_cfg(instrs: &[Instruction]) -> Cfg {
    let n = instrs.len();
    // Leaders: entry, branch targets, instructions following branches/exits.
    let mut leader = vec![false; n];
    if n > 0 {
        leader[0] = true;
    }
    for (i, ins) in instrs.iter().enumerate() {
        match ins.op {
            Op::Bra => {
                let t = ins.target.expect("validated branch has target").index();
                leader[t] = true;
                if i + 1 < n {
                    leader[i + 1] = true;
                }
            }
            Op::Exit if i + 1 < n => {
                leader[i + 1] = true;
            }
            _ => {}
        }
    }
    let mut blocks = Vec::new();
    let mut start = 0;
    for i in 0..n {
        if i > 0 && leader[i] {
            blocks.push(Block {
                start,
                end: i,
                succs: Vec::new(),
                preds: Vec::new(),
            });
            start = i;
        }
    }
    if n > 0 {
        blocks.push(Block {
            start,
            end: n,
            succs: Vec::new(),
            preds: Vec::new(),
        });
    }
    // Edges. A leader opens every block, so a block id is recoverable from
    // any interior index by binary search (`Cfg::block_containing`); the
    // fallthrough successor of block `b` is simply `b + 1`.
    let cfg = Cfg { blocks };
    let exit = cfg.exit_node();
    let mut edges: Vec<(usize, usize)> = Vec::new();
    for b in 0..cfg.blocks.len() {
        let last = cfg.blocks[b].end - 1;
        let ins = &instrs[last];
        match ins.op {
            Op::Bra => {
                let t = cfg.block_containing(ins.target.expect("branch target").index());
                if ins.guard.is_some() {
                    // Divergent branch: fallthrough first, then target.
                    if cfg.blocks[b].end < n {
                        edges.push((b, b + 1));
                    } else {
                        edges.push((b, exit));
                    }
                }
                edges.push((b, t));
            }
            Op::Exit => edges.push((b, exit)),
            _ => {
                if cfg.blocks[b].end < n {
                    edges.push((b, b + 1));
                } else {
                    edges.push((b, exit));
                }
            }
        }
    }
    let mut cfg = cfg;
    for (from, to) in edges {
        cfg.blocks[from].succs.push(to);
        if to != exit {
            cfg.blocks[to].preds.push(from);
        }
    }
    cfg
}

/// Computes immediate dominators with the Cooper–Harvey–Kennedy iterative
/// algorithm over an arbitrary graph given by `preds`, with `entry` as root.
///
/// Returns `idom[v]`: `None` for the entry itself and for unreachable nodes.
fn idoms_generic(
    n: usize,
    entry: usize,
    preds: &dyn Fn(usize) -> Vec<usize>,
    succs: &dyn Fn(usize) -> Vec<usize>,
) -> Vec<Option<usize>> {
    // Reverse postorder from entry.
    let mut order = Vec::with_capacity(n);
    let mut state = vec![0u8; n]; // 0 unvisited, 1 on stack, 2 done
    let mut stack = vec![(entry, 0usize)];
    state[entry] = 1;
    while let Some(&mut (v, ref mut i)) = stack.last_mut() {
        let ss = succs(v);
        if *i < ss.len() {
            let s = ss[*i];
            *i += 1;
            if state[s] == 0 {
                state[s] = 1;
                stack.push((s, 0));
            }
        } else {
            state[v] = 2;
            order.push(v);
            stack.pop();
        }
    }
    order.reverse(); // reverse postorder
    let mut rpo_num = vec![usize::MAX; n];
    for (i, &v) in order.iter().enumerate() {
        rpo_num[v] = i;
    }
    let mut idom: Vec<Option<usize>> = vec![None; n];
    idom[entry] = Some(entry);
    let intersect = |idom: &[Option<usize>], rpo_num: &[usize], mut a: usize, mut b: usize| {
        while a != b {
            while rpo_num[a] > rpo_num[b] {
                a = idom[a].expect("processed node has idom");
            }
            while rpo_num[b] > rpo_num[a] {
                b = idom[b].expect("processed node has idom");
            }
        }
        a
    };
    let mut changed = true;
    while changed {
        changed = false;
        for &v in &order {
            if v == entry {
                continue;
            }
            let mut new_idom: Option<usize> = None;
            for p in preds(v) {
                if idom[p].is_none() {
                    continue;
                }
                new_idom = Some(match new_idom {
                    None => p,
                    Some(cur) => intersect(&idom, &rpo_num, cur, p),
                });
            }
            if new_idom.is_some() && idom[v] != new_idom {
                idom[v] = new_idom;
                changed = true;
            }
        }
    }
    // Entry's idom is conventionally itself internally; report None outside.
    idom[entry] = None;
    idom
}

/// Immediate dominators of the CFG's blocks (`None` for the entry block and
/// unreachable blocks).
pub fn dominators(cfg: &Cfg) -> Vec<Option<usize>> {
    if cfg.blocks.is_empty() {
        return Vec::new();
    }
    let n = cfg.blocks.len() + 1; // + virtual exit (a sink; harmless)
    let exit = cfg.exit_node();
    let preds = |v: usize| -> Vec<usize> {
        if v == exit {
            (0..cfg.blocks.len())
                .filter(|&b| cfg.blocks[b].succs.contains(&exit))
                .collect()
        } else {
            cfg.blocks[v].preds.clone()
        }
    };
    let succs = |v: usize| -> Vec<usize> {
        if v == exit {
            Vec::new()
        } else {
            cfg.blocks[v].succs.clone()
        }
    };
    let mut d = idoms_generic(n, 0, &preds, &succs);
    d.truncate(cfg.blocks.len());
    d
}

/// Immediate post-dominators of the CFG's blocks. `Some(exit_node())` means
/// the block post-dominates straight to program exit; `None` means
/// unreachable.
pub fn postdominators(cfg: &Cfg) -> Vec<Option<usize>> {
    if cfg.blocks.is_empty() {
        return Vec::new();
    }
    let n = cfg.blocks.len() + 1;
    let exit = cfg.exit_node();
    // Reversed graph: entry = virtual exit.
    let preds = |v: usize| -> Vec<usize> {
        // preds in reversed graph = succs in original
        if v == exit {
            Vec::new()
        } else {
            cfg.blocks[v].succs.clone()
        }
    };
    let succs = |v: usize| -> Vec<usize> {
        if v == exit {
            (0..cfg.blocks.len())
                .filter(|&b| cfg.blocks[b].succs.contains(&exit))
                .collect()
        } else {
            cfg.blocks[v].preds.clone()
        }
    };
    let mut d = idoms_generic(n, exit, &preds, &succs);
    d.truncate(cfg.blocks.len());
    d
}

/// Per-divergent-branch layout facts, and the overall verdict.
#[derive(Debug, Clone, Default)]
pub struct LayoutReport {
    /// `(branch pc, reconvergence pc)` for every divergent branch that has a
    /// real (non-exit) reconvergence point. PCs refer to the final layout.
    pub branch_reconv: Vec<(Pc, Pc)>,
    /// True iff every reconvergence point lies at a higher address than its
    /// divergence point — the thread-frontier layout property (paper §3.3).
    pub frontier_ordered: bool,
}

/// Runs the full analysis over `instrs` (branch targets = instruction
/// indices): annotates divergent branches with their reconvergence PC,
/// optionally inserts `SYNC` instructions, and reports layout order.
///
/// Returns the rewritten instruction vector (with remapped targets) and the
/// layout report.
///
/// # Errors
/// Propagates instruction-validation failures.
pub fn analyze_and_finalize(
    mut instrs: Vec<Instruction>,
    insert_syncs: bool,
) -> Result<(Vec<Instruction>, LayoutReport), String> {
    let cfg = build_cfg(&instrs);
    let idom = dominators(&cfg);
    let ipdom = postdominators(&cfg);
    let exit = cfg.exit_node();

    // Reconvergence block for each divergent branch (by old instr index).
    // rec_blocks: set of blocks that are reconvergence points.
    let mut branch_rec: Vec<(usize, Option<usize>)> = Vec::new(); // (branch idx, rec block)
    let mut rec_blocks: Vec<usize> = Vec::new();
    for (b, blk) in cfg.blocks.iter().enumerate() {
        let last = blk.end - 1;
        if instrs[last].is_divergent_branch() {
            match ipdom[b] {
                Some(r) if r != exit => {
                    branch_rec.push((last, Some(r)));
                    if !rec_blocks.contains(&r) {
                        rec_blocks.push(r);
                    }
                }
                _ => branch_rec.push((last, None)),
            }
        }
    }
    rec_blocks.sort_unstable();

    // Old instruction indices where a SYNC is inserted *before*.
    let sync_at: Vec<usize> = if insert_syncs {
        rec_blocks.iter().map(|&b| cfg.blocks[b].start).collect()
    } else {
        Vec::new()
    };

    // new_index(i): position of old instruction i in the final layout.
    let new_index = |i: usize| -> usize { i + sync_at.iter().filter(|&&s| s <= i).count() };
    // sync_index(s): position of the SYNC inserted before old instruction s.
    let sync_index = |s: usize| -> usize { new_index(s) - 1 };
    // Branch-target mapping: a target at a sync point redirects to the SYNC.
    let map_target = |t: usize| -> usize {
        if sync_at.contains(&t) {
            sync_index(t)
        } else {
            new_index(t)
        }
    };

    // Annotate branches with reconvergence PCs (in final coordinates).
    for &(bidx, rec) in &branch_rec {
        instrs[bidx].reconv = rec.map(|r| {
            let s = cfg.blocks[r].start;
            if insert_syncs {
                Pc(sync_index(s) as u32)
            } else {
                Pc(new_index(s) as u32)
            }
        });
    }

    // Rewrite targets and lay out with SYNCs.
    let mut out: Vec<Instruction> = Vec::with_capacity(instrs.len() + sync_at.len());
    for (i, mut ins) in instrs.into_iter().enumerate() {
        if sync_at.contains(&i) {
            let r = cfg.block_containing(i);
            // PCdiv = last instruction of the immediate dominator of the
            // reconvergence block (paper §3.3); entry-block reconvergence
            // cannot happen (entry has no idom) but fall back to 0.
            let pcdiv = idom[r]
                .map(|d| new_index(cfg.blocks[d].end - 1))
                .unwrap_or(0);
            let mut sync = Instruction::new(Op::Sync);
            sync.sync_pcdiv = Some(Pc(pcdiv as u32));
            out.push(sync);
        }
        if let Some(t) = ins.target {
            ins.target = Some(Pc(map_target(t.index()) as u32));
        }
        out.push(ins);
    }

    // Layout report (final coordinates).
    let mut report = LayoutReport {
        branch_reconv: Vec::new(),
        frontier_ordered: true,
    };
    for &(bidx, rec) in &branch_rec {
        if let Some(r) = rec {
            let s = cfg.blocks[r].start;
            let rec_pc = if insert_syncs {
                sync_index(s)
            } else {
                new_index(s)
            };
            let b_pc = new_index(bidx);
            report
                .branch_reconv
                .push((Pc(b_pc as u32), Pc(rec_pc as u32)));
            if rec_pc <= b_pc {
                report.frontier_ordered = false;
            }
        }
    }
    Ok((out, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::{Guard, Operand};
    use crate::reg::{p, r};

    fn mov(d: u8) -> Instruction {
        let mut i = Instruction::new(Op::Mov);
        i.dst = Some(r(d));
        i.srcs[0] = Some(Operand::imm_i32(0));
        i
    }

    fn bra(t: u32, guarded: bool) -> Instruction {
        let mut i = Instruction::new(Op::Bra);
        i.target = Some(Pc(t));
        if guarded {
            i.guard = Some(Guard::if_true(p(0)));
        }
        i
    }

    fn exit() -> Instruction {
        Instruction::new(Op::Exit)
    }

    /// if/else diamond:
    /// 0: @p bra 3    (then at 1..3, else at 3)
    /// 1: mov
    /// 2: bra 4
    /// 3: mov          <- else
    /// 4: mov          <- reconvergence
    /// 5: exit
    fn diamond() -> Vec<Instruction> {
        vec![bra(3, true), mov(1), bra(4, false), mov(2), mov(3), exit()]
    }

    #[test]
    fn cfg_blocks_of_diamond() {
        let c = build_cfg(&diamond());
        assert_eq!(c.blocks.len(), 4);
        assert_eq!(c.blocks[0].succs, vec![1, 2]); // fallthrough then target
        assert_eq!(c.blocks[1].succs, vec![3]);
        assert_eq!(c.blocks[2].succs, vec![3]);
    }

    #[test]
    fn dominators_of_diamond() {
        let c = build_cfg(&diamond());
        let d = dominators(&c);
        assert_eq!(d[0], None);
        assert_eq!(d[1], Some(0));
        assert_eq!(d[2], Some(0));
        assert_eq!(d[3], Some(0));
    }

    #[test]
    fn postdominators_of_diamond() {
        let c = build_cfg(&diamond());
        let pd = postdominators(&c);
        assert_eq!(pd[0], Some(3)); // reconverges at block 3 (pc 4)
        assert_eq!(pd[1], Some(3));
        assert_eq!(pd[2], Some(3));
        assert_eq!(pd[3], Some(c.exit_node()));
    }

    #[test]
    fn sync_insertion_and_target_remap() {
        let (out, rep) = analyze_and_finalize(diamond(), true).unwrap();
        // One sync before old pc 4 → layout length 7.
        assert_eq!(out.len(), 7);
        assert_eq!(out[4].op, Op::Sync);
        // The divergent branch now targets old-3 → new 3.
        assert_eq!(out[0].target, Some(Pc(3)));
        // Its reconvergence annotation points at the SYNC.
        assert_eq!(out[0].reconv, Some(Pc(4)));
        // The then-path's jump to the join targets the SYNC.
        assert_eq!(out[2].target, Some(Pc(4)));
        // PCdiv = last instruction of idom(join) = the branch at 0.
        assert_eq!(out[4].sync_pcdiv, Some(Pc(0)));
        assert!(rep.frontier_ordered);
        assert_eq!(rep.branch_reconv, vec![(Pc(0), Pc(4))]);
    }

    #[test]
    fn no_sync_when_disabled() {
        let (out, rep) = analyze_and_finalize(diamond(), false).unwrap();
        assert_eq!(out.len(), 6);
        assert!(out.iter().all(|i| i.op != Op::Sync));
        assert_eq!(out[0].reconv, Some(Pc(4)));
        assert!(rep.frontier_ordered);
    }

    /// Loop:
    /// 0: mov
    /// 1: mov         <- head
    /// 2: @p bra 1    (back edge, divergent)
    /// 3: exit
    #[test]
    fn divergent_loop_reconverges_at_exit_block() {
        let v = vec![mov(0), mov(1), bra(1, true), exit()];
        let (out, rep) = analyze_and_finalize(v, true).unwrap();
        // Reconvergence block is the exit block (old pc 3): sync inserted.
        let sync_pos = out.iter().position(|i| i.op == Op::Sync).unwrap();
        assert_eq!(sync_pos, 3);
        assert_eq!(out[2].reconv, Some(Pc(3)));
        assert!(rep.frontier_ordered);
        // Back-edge target unchanged (old 1 → new 1).
        assert_eq!(out[2].target, Some(Pc(1)));
    }

    /// Divergent branch straight to exit paths — no reconvergence point.
    #[test]
    fn branch_to_exits_has_no_reconv() {
        // 0: @p bra 3 / 1: mov / 2: exit / 3: mov / 4: exit
        let v = vec![bra(3, true), mov(0), exit(), mov(1), exit()];
        let (out, rep) = analyze_and_finalize(v, true).unwrap();
        assert!(out.iter().all(|i| i.op != Op::Sync));
        assert_eq!(out[0].reconv, None);
        assert!(rep.branch_reconv.is_empty());
        assert!(rep.frontier_ordered);
    }

    /// Backward reconvergence (non-frontier layout, TMD1-style).
    /// 0: bra 4  — jump over join
    /// 1: mov    <- join block (reconvergence), laid out EARLY
    /// 2: mov
    /// 3: exit
    /// 4: @p bra 6
    /// 5: bra 1
    /// 6: bra 1
    #[test]
    fn non_frontier_layout_detected() {
        let v = vec![
            bra(4, false),
            mov(0),
            mov(1),
            exit(),
            bra(6, true),
            bra(1, false),
            bra(1, false),
        ];
        let (_, rep) = analyze_and_finalize(v, true).unwrap();
        assert!(!rep.frontier_ordered);
    }

    /// Straight-line program: one block, trivially (post)dominated.
    #[test]
    fn single_block_dominators_and_postdominators() {
        let c = build_cfg(&[mov(0), mov(1), exit()]);
        assert_eq!(c.blocks.len(), 1);
        assert_eq!(dominators(&c), vec![None]); // entry has no idom
        assert_eq!(postdominators(&c), vec![Some(c.exit_node())]);
        for i in 0..3 {
            assert_eq!(c.block_containing(i), 0);
        }
    }

    /// Loop-to-self: a block whose divergent back edge targets its own head.
    /// 0: mov          <- preheader
    /// 1: mov          <- head (block 1, loops to itself)
    /// 2: @p bra 1
    /// 3: exit
    #[test]
    fn self_loop_dominators_and_postdominators() {
        let c = build_cfg(&[mov(0), mov(1), bra(1, true), exit()]);
        assert_eq!(c.blocks.len(), 3);
        // Block 1's successors are the fallthrough (exit block) and itself.
        assert_eq!(c.blocks[1].succs, vec![2, 1]);
        let d = dominators(&c);
        assert_eq!(d, vec![None, Some(0), Some(1)]);
        // The self-loop must not fool the postdominator fixpoint: block 1
        // post-dominates to the exit block, not to itself.
        let pd = postdominators(&c);
        assert_eq!(pd, vec![Some(1), Some(2), Some(c.exit_node())]);
    }

    /// `block_containing` agrees with a linear scan on an irregular layout.
    #[test]
    fn block_containing_matches_linear_scan() {
        let v = diamond();
        let c = build_cfg(&v);
        for i in 0..v.len() {
            let linear = c
                .blocks
                .iter()
                .position(|b| b.start <= i && i < b.end)
                .unwrap();
            assert_eq!(c.block_containing(i), linear, "instr {i}");
        }
        assert!(c.is_leader(0));
        assert!(c.is_leader(1) && c.is_leader(3) && c.is_leader(4));
        assert!(!c.is_leader(2) && !c.is_leader(5));
    }

    #[test]
    fn nested_if_pcdiv_points_at_inner_branch() {
        // Nested diamonds, matching fig. 4's A..G structure:
        // 0: @p bra 8      A: outer branch (else at 8)
        // 1: mov           B1
        // 2: @p bra 5      C: inner branch (else at 5)
        // 3: mov           D
        // 4: bra 6         -> F
        // 5: mov           E
        // 6: mov           F: inner join
        // 7: bra 9         -> G
        // 8: mov           B2 (outer else)
        // 9: mov           G: outer join
        // 10: exit
        let v = vec![
            bra(8, true),
            mov(0),
            bra(5, true),
            mov(1),
            bra(6, false),
            mov(2),
            mov(3),
            bra(9, false),
            mov(4),
            mov(5),
            exit(),
        ];
        let (out, rep) = analyze_and_finalize(v, true).unwrap();
        assert!(rep.frontier_ordered);
        // Two syncs inserted: before old 6 (F) and old 9 (G).
        let syncs: Vec<usize> = out
            .iter()
            .enumerate()
            .filter(|(_, i)| i.op == Op::Sync)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(syncs.len(), 2);
        // Inner sync's PCdiv is the inner branch (old 2 → new 2 + 0 syncs before).
        let inner_sync = &out[syncs[0]];
        assert_eq!(inner_sync.sync_pcdiv, Some(Pc(2)));
        // Outer sync's PCdiv is the outer branch at 0.
        let outer_sync = &out[syncs[1]];
        assert_eq!(outer_sync.sync_pcdiv, Some(Pc(0)));
    }
}
