//! Register, predicate and special-register identifiers.
//!
//! The warpweave ISA is a load/store register ISA with 32-bit architectural
//! registers (`r0..r63`), single-bit predicate registers (`p0..p7`) and a
//! small set of read-only special registers exposing the thread's position in
//! the launch grid, mirroring the registers a CUDA kernel reads through
//! `%tid`, `%ctaid`, etc.

use std::fmt;

/// Maximum number of general-purpose registers per thread.
pub const NUM_REGS: usize = 64;
/// Maximum number of predicate registers per thread.
pub const NUM_PREDS: usize = 8;

/// A general-purpose 32-bit register identifier (`r0` .. `r63`).
///
/// # Examples
/// ```
/// use warpweave_isa::Reg;
/// let r = Reg::new(3);
/// assert_eq!(r.index(), 3);
/// assert_eq!(r.to_string(), "r3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u8);

impl Reg {
    /// Creates a register identifier.
    ///
    /// # Panics
    /// Panics if `index >= NUM_REGS`.
    pub fn new(index: u8) -> Self {
        assert!(
            (index as usize) < NUM_REGS,
            "register index {index} out of range (max {NUM_REGS})"
        );
        Reg(index)
    }

    /// Returns the register's index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A single-bit predicate register identifier (`p0` .. `p7`).
///
/// # Examples
/// ```
/// use warpweave_isa::Pred;
/// assert_eq!(Pred::new(1).to_string(), "p1");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Pred(u8);

impl Pred {
    /// Creates a predicate register identifier.
    ///
    /// # Panics
    /// Panics if `index >= NUM_PREDS`.
    pub fn new(index: u8) -> Self {
        assert!(
            (index as usize) < NUM_PREDS,
            "predicate index {index} out of range (max {NUM_PREDS})"
        );
        Pred(index)
    }

    /// Returns the predicate register's index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Pred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Read-only special registers describing a thread's launch coordinates.
///
/// These mirror the CUDA built-ins used by the benchmarked kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpecialReg {
    /// Thread index within its block (`threadIdx.x`).
    Tid,
    /// Block index within the grid (`blockIdx.x`).
    CtaId,
    /// Threads per block (`blockDim.x`).
    NTid,
    /// Blocks in the grid (`gridDim.x`).
    NCtaId,
    /// Lane index within the warp (position after thread grouping).
    LaneId,
    /// Warp identifier within the SM.
    WarpId,
}

impl fmt::Display for SpecialReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SpecialReg::Tid => "%tid",
            SpecialReg::CtaId => "%ctaid",
            SpecialReg::NTid => "%ntid",
            SpecialReg::NCtaId => "%nctaid",
            SpecialReg::LaneId => "%laneid",
            SpecialReg::WarpId => "%warpid",
        };
        f.write_str(s)
    }
}

/// Shorthand constructor for general registers: `r(5)` == `Reg::new(5)`.
pub fn r(index: u8) -> Reg {
    Reg::new(index)
}

/// Shorthand constructor for predicate registers: `p(0)` == `Pred::new(0)`.
pub fn p(index: u8) -> Pred {
    Pred::new(index)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg_roundtrip() {
        for i in 0..NUM_REGS as u8 {
            assert_eq!(Reg::new(i).index(), i as usize);
        }
    }

    #[test]
    #[should_panic]
    fn reg_out_of_range_panics() {
        Reg::new(NUM_REGS as u8);
    }

    #[test]
    #[should_panic]
    fn pred_out_of_range_panics() {
        Pred::new(NUM_PREDS as u8);
    }

    #[test]
    fn display_forms() {
        assert_eq!(r(0).to_string(), "r0");
        assert_eq!(p(7).to_string(), "p7");
        assert_eq!(SpecialReg::Tid.to_string(), "%tid");
        assert_eq!(SpecialReg::WarpId.to_string(), "%warpid");
    }
}
