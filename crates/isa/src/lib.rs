//! # warpweave-isa
//!
//! The instruction set, assembler and control-flow analyses underlying the
//! warpweave SIMT simulator — a from-scratch reproduction of the substrate
//! required by *"Simultaneous Branch and Warp Interweaving for Sustained GPU
//! Performance"* (Brunie, Collange, Diamos — ISCA 2012).
//!
//! The crate provides:
//!
//! * a compact SASS-like ISA ([`Op`], [`Instruction`], [`Reg`], [`Pred`],
//!   [`SpecialReg`]) with MAD / SFU / LSU / control unit classes,
//! * a fluent assembler ([`KernelBuilder`]) with symbolic labels,
//! * control-flow analysis ([`mod@cfg`]) that annotates divergent branches with
//!   their immediate-post-dominator reconvergence points (used by the
//!   baseline PDOM stack) and inserts the paper's `SYNC` markers carrying
//!   `PCdiv` payloads (used by SBI reconvergence constraints, §3.3).
//!
//! # Examples
//! ```
//! use warpweave_isa::{KernelBuilder, CmpOp, SpecialReg, r, p};
//!
//! # fn main() -> Result<(), String> {
//! // if (tid < 16) r1 = 1 else r1 = 2
//! let mut k = KernelBuilder::new("demo");
//! k.mov(r(0), SpecialReg::Tid);
//! k.isetp(p(0), CmpOp::Lt, r(0), 16i32);
//! k.bra_ifn(p(0), "else");
//! k.mov(r(1), 1i32);
//! k.bra("join");
//! k.label("else");
//! k.mov(r(1), 2i32);
//! k.label("join");
//! k.exit();
//! let program = k.build()?;
//! println!("{}", program.disassemble());
//! # Ok(())
//! # }
//! ```

pub mod asm;
pub mod cfg;
pub mod fuzz;
pub mod instr;
pub mod op;
pub mod program;
pub mod reg;
pub mod superblock;

pub use asm::{program_from_text, program_to_text, KernelBuilder};
pub use cfg::{build_cfg, dominators, postdominators, Cfg, LayoutReport};
pub use fuzz::{FuzzProfile, KernelPlan, Reproducer};
pub use instr::{Guard, Instruction, Operand};
pub use op::{CmpOp, MemSpace, Op, UnitClass};
pub use program::{Pc, Program};
pub use reg::{p, r, Pred, Reg, SpecialReg, NUM_PREDS, NUM_REGS};
pub use superblock::{FusedOp, FusedSrc, Superblock, SuperblockSet, MIN_SUPERBLOCK_LEN};
