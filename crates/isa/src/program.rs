//! Programs: instruction sequences addressed by [`Pc`].
//!
//! PC order doubles as the thread-frontier priority order (paper §3.1,
//! footnote 1: "thread-frontier priorities are implicitly encoded in the
//! program order").

use std::fmt;
use std::ops::Index;

use crate::instr::Instruction;

/// A program counter: an index into the program's instruction vector.
///
/// One instruction occupies one address unit, so PC ordering is exactly
/// instruction ordering — the property thread-frontier reconvergence relies
/// on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Pc(pub u32);

impl Pc {
    /// The next sequential PC.
    pub fn next(self) -> Pc {
        Pc(self.0 + 1)
    }

    /// The PC as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Pc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}", self.0)
    }
}

/// A validated program: the kernel name, its instructions and launch
/// metadata produced by the assembler.
#[derive(Debug, Clone)]
pub struct Program {
    name: String,
    instrs: Vec<Instruction>,
    /// Whether the code layout follows thread-frontier (program) order; see
    /// [`crate::cfg::LayoutReport`]. TMD1 deliberately violates this.
    frontier_ordered: bool,
}

impl Program {
    /// Builds a program from parts. Prefer [`crate::asm::KernelBuilder`];
    /// this constructor validates each instruction but performs no CFG
    /// analysis.
    ///
    /// # Errors
    /// Returns the first instruction-level validation error, or an error for
    /// out-of-range branch targets.
    pub fn from_instructions(
        name: impl Into<String>,
        instrs: Vec<Instruction>,
        frontier_ordered: bool,
    ) -> Result<Self, String> {
        let len = instrs.len() as u32;
        for (pc, i) in instrs.iter().enumerate() {
            i.validate().map_err(|e| format!("@{pc}: {e}"))?;
            if let Some(t) = i.target {
                if t.0 >= len {
                    return Err(format!("@{pc}: branch target {t} out of range"));
                }
            }
        }
        Ok(Program {
            name: name.into(),
            instrs,
            frontier_ordered,
        })
    }

    /// The kernel's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// True if the program contains no instructions.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// The instruction at `pc`, or `None` past the end.
    pub fn get(&self, pc: Pc) -> Option<&Instruction> {
        self.instrs.get(pc.index())
    }

    /// All instructions in PC order.
    pub fn instructions(&self) -> &[Instruction] {
        &self.instrs
    }

    /// Whether the code layout follows thread-frontier order.
    pub fn is_frontier_ordered(&self) -> bool {
        self.frontier_ordered
    }

    /// A human-readable disassembly listing.
    pub fn disassemble(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("// kernel {}\n", self.name));
        for (pc, i) in self.instrs.iter().enumerate() {
            out.push_str(&format!("{pc:4}: {i}\n"));
        }
        out
    }
}

impl Index<Pc> for Program {
    type Output = Instruction;

    fn index(&self, pc: Pc) -> &Instruction {
        &self.instrs[pc.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Op;
    use crate::reg::r;

    fn mov(d: u8, v: i32) -> Instruction {
        let mut i = Instruction::new(Op::Mov);
        i.dst = Some(r(d));
        i.srcs[0] = Some(crate::instr::Operand::imm_i32(v));
        i
    }

    #[test]
    fn pc_ordering_and_next() {
        assert!(Pc(1) < Pc(2));
        assert_eq!(Pc(1).next(), Pc(2));
    }

    #[test]
    fn build_and_index() {
        let p = Program::from_instructions(
            "t",
            vec![mov(0, 1), mov(1, 2), Instruction::new(Op::Exit)],
            true,
        )
        .unwrap();
        assert_eq!(p.len(), 3);
        assert_eq!(p[Pc(2)].op, Op::Exit);
        assert!(p.get(Pc(3)).is_none());
        assert!(p.disassemble().contains("exit"));
    }

    #[test]
    fn rejects_out_of_range_target() {
        let mut b = Instruction::new(Op::Bra);
        b.target = Some(Pc(9));
        assert!(Program::from_instructions("t", vec![b], true).is_err());
    }

    #[test]
    fn rejects_invalid_instruction() {
        let i = Instruction::new(Op::IAdd); // missing operands
        assert!(Program::from_instructions("t", vec![i], true).is_err());
    }
}
