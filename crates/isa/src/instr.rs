//! Instruction encoding: operands, guards and the [`Instruction`] record.

use std::fmt;

use crate::op::{CmpOp, MemSpace, Op};
use crate::program::Pc;
use crate::reg::{Pred, Reg, SpecialReg};

/// An instruction source operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// A general-purpose register.
    Reg(Reg),
    /// A 32-bit immediate (integers directly; floats bit-cast).
    Imm(u32),
    /// A read-only special register.
    Special(SpecialReg),
    /// The `idx`-th 32-bit kernel launch parameter.
    Param(u8),
}

impl Operand {
    /// Immediate operand from an `i32`.
    pub fn imm_i32(v: i32) -> Self {
        Operand::Imm(v as u32)
    }

    /// Immediate operand from an `f32` (bit-cast).
    pub fn imm_f32(v: f32) -> Self {
        Operand::Imm(v.to_bits())
    }

    /// The register read by this operand, if any.
    pub fn reg(self) -> Option<Reg> {
        match self {
            Operand::Reg(r) => Some(r),
            _ => None,
        }
    }
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Self {
        Operand::Reg(r)
    }
}

impl From<i32> for Operand {
    fn from(v: i32) -> Self {
        Operand::imm_i32(v)
    }
}

impl From<u32> for Operand {
    fn from(v: u32) -> Self {
        Operand::Imm(v)
    }
}

impl From<f32> for Operand {
    fn from(v: f32) -> Self {
        Operand::imm_f32(v)
    }
}

impl From<SpecialReg> for Operand {
    fn from(s: SpecialReg) -> Self {
        Operand::Special(s)
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Imm(v) => write!(f, "0x{v:x}"),
            Operand::Special(s) => write!(f, "{s}"),
            Operand::Param(i) => write!(f, "param[{i}]"),
        }
    }
}

/// A predicate guard: `@p` (execute if true) or `@!p` (execute if false).
///
/// Guards predicate *writes*; guarded-off threads still occupy their lane.
/// A guarded `Bra` is the divergent conditional branch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Guard {
    /// The predicate register tested.
    pub pred: Pred,
    /// The sense: `true` for `@p`, `false` for `@!p`.
    pub sense: bool,
}

impl Guard {
    /// `@p` guard.
    pub fn if_true(pred: Pred) -> Self {
        Guard { pred, sense: true }
    }

    /// `@!p` guard.
    pub fn if_false(pred: Pred) -> Self {
        Guard { pred, sense: false }
    }
}

impl fmt::Display for Guard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.sense {
            write!(f, "@{}", self.pred)
        } else {
            write!(f, "@!{}", self.pred)
        }
    }
}

/// A fully-decoded instruction.
///
/// This is a "wide" decoded form: a single record covers every opcode. The
/// assembler (see [`crate::asm::KernelBuilder`]) guarantees the operand
/// combination is valid for the opcode, and [`Instruction::validate`]
/// re-checks the invariants.
#[derive(Debug, Clone, PartialEq)]
pub struct Instruction {
    /// Opcode.
    pub op: Op,
    /// Optional predicate guard.
    pub guard: Option<Guard>,
    /// Destination register (ALU/SFU results, load data, atomic old value).
    pub dst: Option<Reg>,
    /// Destination predicate (`ISetP` / `FSetP`).
    pub pdst: Option<Pred>,
    /// Source operands (up to 3; unused slots are `None`).
    pub srcs: [Option<Operand>; 3],
    /// Comparison operator for `ISetP`/`FSetP`.
    pub cmp: Option<CmpOp>,
    /// Select predicate for `Sel`.
    pub sel_pred: Option<Pred>,
    /// Branch target PC (`Bra`).
    pub target: Option<Pc>,
    /// Reconvergence PC for potentially-divergent branches; computed by CFG
    /// analysis as the immediate post-dominator. Used by the baseline
    /// PDOM-stack architecture.
    pub reconv: Option<Pc>,
    /// `Sync` payload: `PCdiv`, the last instruction of the immediate
    /// dominator of this reconvergence point (paper §3.3).
    pub sync_pcdiv: Option<Pc>,
    /// Address space for memory operations.
    pub space: MemSpace,
    /// Byte offset added to the address register for memory operations.
    pub offset: i32,
}

impl Instruction {
    /// A new instruction of the given opcode with all fields empty.
    pub fn new(op: Op) -> Self {
        Instruction {
            op,
            guard: None,
            dst: None,
            pdst: None,
            srcs: [None; 3],
            cmp: None,
            sel_pred: None,
            target: None,
            reconv: None,
            sync_pcdiv: None,
            space: MemSpace::Global,
            offset: 0,
        }
    }

    /// Iterator over the present source operands.
    pub fn sources(&self) -> impl Iterator<Item = Operand> + '_ {
        self.srcs.iter().flatten().copied()
    }

    /// Registers read by this instruction (sources only).
    pub fn src_regs(&self) -> impl Iterator<Item = Reg> + '_ {
        self.sources().filter_map(Operand::reg)
    }

    /// Predicates read by this instruction (guard + select predicate).
    pub fn src_preds(&self) -> impl Iterator<Item = Pred> + '_ {
        self.guard.map(|g| g.pred).into_iter().chain(self.sel_pred)
    }

    /// True if the instruction may cause intra-warp control-flow divergence:
    /// a guarded branch.
    pub fn is_divergent_branch(&self) -> bool {
        self.op == Op::Bra && self.guard.is_some()
    }

    /// Bitmask of the registers this instruction reads **or** writes
    /// (bit `r` = register `r`) — the register-ID footprint a scoreboard
    /// matches candidates against (RAW on sources, WAW on the
    /// destination).
    pub fn reg_footprint(&self) -> u64 {
        let mut m = 0u64;
        for r in self.src_regs() {
            m |= 1 << r.index();
        }
        if let Some(d) = self.dst {
            m |= 1 << d.index();
        }
        m
    }

    /// Bitmask of the predicates this instruction reads (guard, select)
    /// **or** writes (`pdst`).
    pub fn pred_footprint(&self) -> u8 {
        let mut m = 0u8;
        for p in self.src_preds() {
            m |= 1 << p.index();
        }
        if let Some(pd) = self.pdst {
            m |= 1 << pd.index();
        }
        m
    }

    /// Checks structural invariants (operand counts per opcode).
    ///
    /// # Errors
    /// Returns a description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        use Op::*;
        let nsrc = self.sources().count();
        let need = |n: usize| -> Result<(), String> {
            if nsrc == n {
                Ok(())
            } else {
                Err(format!("{} expects {n} sources, has {nsrc}", self.op))
            }
        };
        let need_dst = || -> Result<(), String> {
            if self.dst.is_some() {
                Ok(())
            } else {
                Err(format!("{} requires a destination register", self.op))
            }
        };
        match self.op {
            Mov | Not | I2F | F2I | Rcp | Sqrt | Rsqrt | Sin | Cos | Ex2 | Lg2 => {
                need(1)?;
                need_dst()?;
            }
            IAdd | ISub | IMul | IMin | IMax | And | Or | Xor | Shl | Shr | Sra | FAdd | FSub
            | FMul | FMin | FMax => {
                need(2)?;
                need_dst()?;
            }
            IMad | FFma => {
                need(3)?;
                need_dst()?;
            }
            ISetP | FSetP => {
                need(2)?;
                if self.pdst.is_none() {
                    return Err("setp requires a destination predicate".into());
                }
                if self.cmp.is_none() {
                    return Err("setp requires a comparison operator".into());
                }
            }
            Sel => {
                need(2)?;
                need_dst()?;
                if self.sel_pred.is_none() {
                    return Err("sel requires a select predicate".into());
                }
            }
            Ld => {
                need(1)?;
                need_dst()?;
            }
            St => {
                need(2)?;
            }
            AtomAdd => {
                need(2)?;
            }
            Bra => {
                if self.target.is_none() {
                    return Err("bra requires a target".into());
                }
            }
            Sync => {
                if self.sync_pcdiv.is_none() {
                    return Err("sync requires a PCdiv payload".into());
                }
            }
            Bar | Exit | Nop => {
                need(0)?;
            }
        }
        // Exit, Bar and Sync operate on the whole warp-split: a guard would
        // require partial-mask semantics the divergence structures do not
        // model (use a branch around them instead).
        if matches!(self.op, Exit | Bar | Sync) && self.guard.is_some() {
            return Err(format!("{} must not be guarded", self.op));
        }
        Ok(())
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(g) = self.guard {
            write!(f, "{g} ")?;
        }
        write!(f, "{}", self.op)?;
        if let Some(c) = self.cmp {
            write!(f, ".{c}")?;
        }
        let mut first = true;
        let mut sep = |f: &mut fmt::Formatter<'_>| -> fmt::Result {
            if first {
                first = false;
                write!(f, " ")
            } else {
                write!(f, ", ")
            }
        };
        if let Some(d) = self.dst {
            sep(f)?;
            write!(f, "{d}")?;
        }
        if let Some(pd) = self.pdst {
            sep(f)?;
            write!(f, "{pd}")?;
        }
        if let Some(sp) = self.sel_pred {
            sep(f)?;
            write!(f, "{sp}")?;
        }
        for s in self.sources() {
            sep(f)?;
            match self.op {
                Op::Ld | Op::St | Op::AtomAdd if Some(s) == self.srcs[0] => {
                    write!(f, "[{s}{:+}]", self.offset)?
                }
                _ => write!(f, "{s}")?,
            }
        }
        if let Some(t) = self.target {
            sep(f)?;
            write!(f, "{t}")?;
        }
        if let Some(d) = self.sync_pcdiv {
            sep(f)?;
            write!(f, "(pcdiv={d})")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::{p, r};

    #[test]
    fn validate_catches_missing_operands() {
        let mut i = Instruction::new(Op::IAdd);
        assert!(i.validate().is_err());
        i.dst = Some(r(0));
        i.srcs = [Some(r(1).into()), Some(r(2).into()), None];
        assert!(i.validate().is_ok());
    }

    #[test]
    fn validate_setp() {
        let mut i = Instruction::new(Op::ISetP);
        i.srcs = [Some(r(1).into()), Some(Operand::imm_i32(3)), None];
        assert!(i.validate().is_err());
        i.pdst = Some(p(0));
        i.cmp = Some(CmpOp::Lt);
        assert!(i.validate().is_ok());
    }

    #[test]
    fn divergent_branch_detection() {
        let mut b = Instruction::new(Op::Bra);
        b.target = Some(Pc(7));
        assert!(!b.is_divergent_branch());
        b.guard = Some(Guard::if_true(p(0)));
        assert!(b.is_divergent_branch());
    }

    #[test]
    fn display_is_nonempty_and_readable() {
        let mut i = Instruction::new(Op::IMad);
        i.dst = Some(r(3));
        i.srcs = [
            Some(r(1).into()),
            Some(r(2).into()),
            Some(Operand::imm_i32(4)),
        ];
        let s = i.to_string();
        assert!(s.contains("imad"));
        assert!(s.contains("r3"));
    }

    #[test]
    fn operand_conversions() {
        assert_eq!(Operand::from(1.0f32), Operand::Imm(0x3f80_0000));
        assert_eq!(Operand::from(-1i32), Operand::Imm(u32::MAX));
        assert_eq!(Operand::from(r(2)).reg(), Some(r(2)));
        assert_eq!(Operand::Imm(3).reg(), None);
    }
}
