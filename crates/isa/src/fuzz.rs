//! Seeded synthetic-kernel generator for differential and determinism
//! fuzzing.
//!
//! The 21 hand-ported workloads exercise a narrow slice of the divergence
//! shapes the paper cares about. This module generates *structured* random
//! kernels over the full ISA — nested divergent if/else regions, counted
//! (always-terminating) loops, barriers at reconvergence-safe points, and
//! mixed global/shared/param address-space traffic — from a single `u64`
//! seed and a [`FuzzProfile`] that dials the shape from WaSP-style regular
//! streams to fig-8-style pathological divergence.
//!
//! Generation is wall-clock-free: the same `(seed, profile)` pair always
//! produces the same [`KernelPlan`] and the same lowered [`Program`], so a
//! CI failure is reproducible with one environment variable
//! ([`SEED_ENV`]). Plans shrink structurally
//! ([`KernelPlan::shrink_candidates`]) and serialise to replayable
//! reproducer files ([`Reproducer`]) via the `isa::asm` text round-trip.
//!
//! # Safety invariants of generated kernels
//!
//! * **Termination** — every loop is counted: the trip count is loaded
//!   into a dedicated counter register before the loop head and
//!   decremented on the back edge, so kernels always finish within a
//!   modest cycle budget.
//! * **Barriers** — `bar.sync` is emitted only at nesting depth 0, where
//!   the structured lowering guarantees all threads of the block are
//!   converged and none has exited.
//! * **Bounded memory** — addresses are masked into fixed windows below
//!   [`REGION_WORDS`] words at [`STORE_BASE`], [`ATOM_BASE`] and
//!   [`INPUT_BASE`]; plain stores and atomics use *disjoint* regions
//!   (the multi-SM journal merge applies stores before atomic deltas, so
//!   mixing both on one word in a single launch is outside the memory
//!   model).

use crate::asm::{program_from_text, program_to_text, KernelBuilder};
use crate::instr::Operand;
use crate::op::{CmpOp, MemSpace, Op};
use crate::program::Program;
use crate::reg::{p, r, SpecialReg};

/// Environment variable overriding the base seed of every fuzz entry
/// point (harness tests, the corpus replay test and the `fuzz_smoke`
/// bin). Accepts decimal or `0x`-prefixed hex.
pub const SEED_ENV: &str = "WARPWEAVE_FUZZ_SEED";

/// Resolves the fuzz base seed: [`SEED_ENV`] if set and parseable,
/// otherwise `default`.
pub fn seed_from_env(default: u64) -> u64 {
    match std::env::var(SEED_ENV) {
        Ok(s) => parse_seed(&s).unwrap_or(default),
        Err(_) => default,
    }
}

/// Parses a decimal or `0x`-hex seed string.
pub fn parse_seed(s: &str) -> Option<u64> {
    let s = s.trim();
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

/// Byte address of the plain-store region in global memory (`param[0]`).
pub const STORE_BASE: u32 = 0x0001_0000;
/// Byte address of the atomic-add region in global memory (`param[1]`).
/// Disjoint from [`STORE_BASE`] — see the module docs.
pub const ATOM_BASE: u32 = 0x0002_0000;
/// Byte address of the preloaded read-only input region (`param[2]`).
pub const INPUT_BASE: u32 = 0x0003_0000;
/// Words per global region (1024-word address window plus offset slack).
pub const REGION_WORDS: usize = 1040;

/// Launch parameters every generated kernel is run with: the three region
/// bases plus one odd seed-derived constant readable as `param[3]`.
pub fn launch_params(seed: u64) -> Vec<u32> {
    vec![STORE_BASE, ATOM_BASE, INPUT_BASE, (seed as u32) | 1]
}

/// The deterministic contents preloaded at [`INPUT_BASE`] before a run.
pub fn input_words(seed: u64) -> Vec<u32> {
    let mut s = seed ^ 0xa5a5_5a5a_1234_9876;
    (0..REGION_WORDS).map(|_| splitmix(&mut s) as u32).collect()
}

/// SplitMix64 step — the only randomness source in this module.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A seeded deterministic RNG for kernel generation (SplitMix64).
#[derive(Debug, Clone)]
pub struct FuzzRng(u64);

impl FuzzRng {
    /// A new stream seeded with `seed`.
    pub fn new(seed: u64) -> FuzzRng {
        FuzzRng(seed)
    }

    /// Next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        splitmix(&mut self.0)
    }

    /// Uniform value in `0..n` (`n > 0`).
    pub fn below(&mut self, n: u32) -> u32 {
        (self.next_u64() % n as u64) as u32
    }

    /// True with probability `pct`/100.
    pub fn chance(&mut self, pct: u32) -> bool {
        self.below(100) < pct
    }

    /// Uniform pick from a non-empty slice.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.below(xs.len() as u32) as usize]
    }
}

/// Shape parameters for kernel generation. Presets dial from WaSP-style
/// regular streams ([`FuzzProfile::regular`]) to fig-8-style pathological
/// divergence ([`FuzzProfile::pathological`]).
#[derive(Debug, Clone)]
pub struct FuzzProfile {
    /// Preset name (used in reproducers and the stats table).
    pub name: &'static str,
    /// Maximum if/else + loop nesting depth (≤ 4: one structural
    /// predicate and one loop-counter register are reserved per level).
    pub max_depth: u32,
    /// Maximum *loop* nesting depth (≤ `max_depth`); bounds the dynamic
    /// trip-count product.
    pub max_loop_depth: u32,
    /// Percent chance a statement slot nests a control region.
    pub branch_pct: u32,
    /// Of nested regions, percent chance it is a loop (vs if/else).
    pub loop_pct: u32,
    /// Percent chance a straight-line statement is a memory operation.
    pub mem_pct: u32,
    /// Of compute statements, percent chance the op is SFU class.
    pub sfu_pct: u32,
    /// Of memory statements, percent chance it is an atomic add.
    pub atomic_pct: u32,
    /// Of memory statements, percent chance it targets shared memory.
    pub shared_pct: u32,
    /// Percent chance of a block-wide barrier after a top-level region.
    pub barrier_pct: u32,
    /// Percent chance a loop's trip count is thread-dependent
    /// (`gtid & mask` extra iterations — the fig. 8 divergence shape).
    pub tid_trips_pct: u32,
    /// Maximum statements per straight-line block.
    pub max_block_stmts: u32,
    /// Maximum top-level regions.
    pub max_regions: u32,
    /// Maximum uniform loop trip count.
    pub max_trips: u32,
    /// Static instruction budget for the lowered kernel.
    pub max_instrs: u32,
    /// Grid shape the kernel is launched with.
    pub grid_blocks: u32,
    /// Block shape the kernel is launched with (may be a non-multiple of
    /// the warp width to exercise partially-populated warps).
    pub block_threads: u32,
}

impl FuzzProfile {
    /// Balanced default: moderate divergence, all op classes.
    pub fn balanced() -> FuzzProfile {
        FuzzProfile {
            name: "balanced",
            max_depth: 2,
            max_loop_depth: 1,
            branch_pct: 30,
            loop_pct: 40,
            mem_pct: 30,
            sfu_pct: 15,
            atomic_pct: 20,
            shared_pct: 25,
            barrier_pct: 25,
            tid_trips_pct: 30,
            max_block_stmts: 5,
            max_regions: 3,
            max_trips: 4,
            max_instrs: 120,
            grid_blocks: 2,
            block_threads: 128,
        }
    }

    /// WaSP-style regular stream: long straight-line compute/memory
    /// blocks, barriers, almost no divergence.
    pub fn regular() -> FuzzProfile {
        FuzzProfile {
            name: "regular",
            max_depth: 1,
            max_loop_depth: 1,
            branch_pct: 8,
            loop_pct: 70,
            mem_pct: 40,
            sfu_pct: 25,
            atomic_pct: 5,
            shared_pct: 15,
            barrier_pct: 50,
            tid_trips_pct: 0,
            max_block_stmts: 8,
            max_regions: 3,
            max_trips: 4,
            max_instrs: 140,
            grid_blocks: 2,
            block_threads: 256,
        }
    }

    /// Fig-8-style pathological divergence: deep nested if/else,
    /// thread-dependent loop trip counts, few coalesced accesses.
    pub fn pathological() -> FuzzProfile {
        FuzzProfile {
            name: "pathological",
            max_depth: 4,
            max_loop_depth: 2,
            branch_pct: 55,
            loop_pct: 35,
            mem_pct: 20,
            sfu_pct: 10,
            atomic_pct: 25,
            shared_pct: 20,
            barrier_pct: 15,
            tid_trips_pct: 75,
            max_block_stmts: 4,
            max_regions: 3,
            max_trips: 3,
            max_instrs: 150,
            grid_blocks: 2,
            block_threads: 160,
        }
    }

    /// Memory-pressure profile: most statements are loads, stores and
    /// atomics across all three address spaces.
    pub fn memory_heavy() -> FuzzProfile {
        FuzzProfile {
            name: "memory_heavy",
            max_depth: 2,
            max_loop_depth: 1,
            branch_pct: 20,
            loop_pct: 50,
            mem_pct: 70,
            sfu_pct: 5,
            atomic_pct: 35,
            shared_pct: 40,
            barrier_pct: 30,
            tid_trips_pct: 20,
            max_block_stmts: 6,
            max_regions: 2,
            max_trips: 3,
            max_instrs: 120,
            grid_blocks: 3,
            block_threads: 96,
        }
    }

    /// All presets, in stats-table order.
    pub fn all() -> Vec<FuzzProfile> {
        vec![
            FuzzProfile::regular(),
            FuzzProfile::balanced(),
            FuzzProfile::pathological(),
            FuzzProfile::memory_heavy(),
        ]
    }

    /// Looks a preset up by name.
    pub fn by_name(name: &str) -> Option<FuzzProfile> {
        FuzzProfile::all().into_iter().find(|f| f.name == name)
    }
}

/// Number of compute-window registers (`r4..r15`).
const WIN: u8 = 12;
/// First compute-window register.
const WIN_BASE: u8 = 4;
/// First loop-counter register (one per nesting depth).
const LOOP_CTR_BASE: u8 = 16;
/// First structural (branch/loop) predicate (one per nesting depth).
const STRUCT_PRED_BASE: u8 = 0;
/// First compute predicate (`isetp`/`fsetp` results feeding `sel`).
const COMPUTE_PRED_BASE: u8 = 4;
/// Compute predicates available.
const COMPUTE_PREDS: u8 = 4;

/// MAD-class compute ops the generator draws from.
const MAD_OPS: [Op; 25] = [
    Op::Mov,
    Op::IAdd,
    Op::ISub,
    Op::IMul,
    Op::IMad,
    Op::IMin,
    Op::IMax,
    Op::And,
    Op::Or,
    Op::Xor,
    Op::Not,
    Op::Shl,
    Op::Shr,
    Op::Sra,
    Op::FAdd,
    Op::FSub,
    Op::FMul,
    Op::FFma,
    Op::FMin,
    Op::FMax,
    Op::I2F,
    Op::F2I,
    Op::ISetP,
    Op::FSetP,
    Op::Sel,
];

/// SFU-class ops.
const SFU_OPS: [Op; 7] = [
    Op::Rcp,
    Op::Sqrt,
    Op::Rsqrt,
    Op::Sin,
    Op::Cos,
    Op::Ex2,
    Op::Lg2,
];

const CMPS: [CmpOp; 6] = [
    CmpOp::Eq,
    CmpOp::Ne,
    CmpOp::Lt,
    CmpOp::Le,
    CmpOp::Gt,
    CmpOp::Ge,
];

/// A source operand in the plan's register-convention namespace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Src {
    /// Compute-window register (`r4 + i % 12`).
    Win(u8),
    /// The global thread id register `r0`.
    Gtid,
    /// Immediate.
    Imm(u32),
    /// Special register.
    Special(SpecialReg),
    /// Launch parameter `param[i % 4]`.
    Param(u8),
}

impl Src {
    fn lower(self) -> Operand {
        match self {
            Src::Win(w) => Operand::Reg(r(WIN_BASE + w % WIN)),
            Src::Gtid => Operand::Reg(r(0)),
            Src::Imm(v) => Operand::Imm(v),
            Src::Special(s) => Operand::Special(s),
            Src::Param(i) => Operand::Param(i % 4),
        }
    }
}

/// A straight-line ALU/SFU statement writing into the compute window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ComputeStmt {
    /// The opcode (MAD or SFU class, including `isetp`/`fsetp`/`sel`).
    pub op: Op,
    /// Destination window register.
    pub dst: u8,
    /// Destination compute predicate (setp ops only).
    pub pdst: u8,
    /// Comparison (setp ops only).
    pub cmp: CmpOp,
    /// Select predicate (`sel` only).
    pub sel_pred: u8,
    /// Sources (only the op's arity is used).
    pub srcs: [Src; 3],
}

/// Which region a memory statement touches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemKind {
    /// 32-bit load into the compute window.
    Load,
    /// 32-bit plain store (store region only).
    Store,
    /// Atomic add (atomic region only — disjoint from stores).
    AtomicAdd,
}

/// A memory statement; the address is a masked hash of a window register.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemStmt {
    /// Load / store / atomic.
    pub kind: MemKind,
    /// Global or shared space.
    pub space: MemSpace,
    /// For loads: which global region is read (0 store, 1 atom, 2 input).
    pub load_region: u8,
    /// Window register hashed into the address.
    pub addr_src: u8,
    /// Store/atomic payload.
    pub data: Src,
    /// Load destination window register.
    pub dst: u8,
    /// Word offset (0..8) folded into the instruction's byte offset.
    pub offset_words: u8,
}

/// One node of the structured kernel plan.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// Straight-line compute.
    Compute(ComputeStmt),
    /// Memory traffic.
    Mem(MemStmt),
    /// A divergent if/else region: `if ((win[lhs] & mask) cmp rhs)`.
    IfElse {
        /// Mask applied to the scrutinee (bounds the comparison domain).
        mask: u32,
        /// Comparison operator.
        cmp: CmpOp,
        /// Window register compared.
        lhs: u8,
        /// Immediate threshold (within `0..=mask`).
        rhs: u32,
        /// Taken-side body.
        then_s: Vec<Stmt>,
        /// Fall-through body (may be empty).
        else_s: Vec<Stmt>,
    },
    /// A counted loop; `tid_mask != 0` adds `gtid & tid_mask` extra trips
    /// (thread-dependent trip counts — the fig. 8 divergence shape).
    Loop {
        /// Uniform trip count (≥ 1).
        trips: u8,
        /// Extra-trip mask (0 = uniform loop).
        tid_mask: u8,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// Block-wide barrier — only valid at nesting depth 0.
    Barrier,
}

/// A generated kernel plan: the structured statement tree plus the seed
/// and profile that produced it. Lowers deterministically to a
/// [`Program`] and shrinks structurally.
#[derive(Debug, Clone)]
pub struct KernelPlan {
    /// Seed the plan was generated from.
    pub seed: u64,
    /// Profile the plan was generated with.
    pub profile: FuzzProfile,
    /// Per-window-register init constants (xor'd with the thread id).
    pub window_init: Vec<u32>,
    /// Top-level statements.
    pub stmts: Vec<Stmt>,
}

fn gen_compute(rng: &mut FuzzRng, profile: &FuzzProfile) -> ComputeStmt {
    let op = if rng.chance(profile.sfu_pct) {
        *rng.pick(&SFU_OPS)
    } else {
        *rng.pick(&MAD_OPS)
    };
    let mut srcs = [Src::Win(0); 3];
    for s in srcs.iter_mut() {
        *s = match rng.below(10) {
            0..=4 => Src::Win(rng.below(WIN as u32) as u8),
            5 => Src::Gtid,
            6..=7 => Src::Imm(rng.next_u64() as u32),
            8 => Src::Special(*rng.pick(&[
                SpecialReg::Tid,
                SpecialReg::CtaId,
                SpecialReg::NTid,
                SpecialReg::NCtaId,
                SpecialReg::LaneId,
                SpecialReg::WarpId,
            ])),
            _ => Src::Param(rng.below(4) as u8),
        };
    }
    ComputeStmt {
        op,
        dst: rng.below(WIN as u32) as u8,
        pdst: rng.below(COMPUTE_PREDS as u32) as u8,
        cmp: *rng.pick(&CMPS),
        sel_pred: rng.below(COMPUTE_PREDS as u32) as u8,
        srcs,
    }
}

fn gen_mem(rng: &mut FuzzRng, profile: &FuzzProfile) -> MemStmt {
    let kind = if rng.chance(profile.atomic_pct) {
        MemKind::AtomicAdd
    } else if rng.chance(50) {
        MemKind::Load
    } else {
        MemKind::Store
    };
    let space = if rng.chance(profile.shared_pct) {
        MemSpace::Shared
    } else {
        MemSpace::Global
    };
    let data = match rng.below(3) {
        0 => Src::Win(rng.below(WIN as u32) as u8),
        1 => Src::Gtid,
        _ => Src::Imm(rng.below(0xffff)),
    };
    MemStmt {
        kind,
        space,
        load_region: rng.below(3) as u8,
        addr_src: rng.below(WIN as u32) as u8,
        data,
        dst: rng.below(WIN as u32) as u8,
        offset_words: rng.below(8) as u8,
    }
}

fn gen_block(
    rng: &mut FuzzRng,
    profile: &FuzzProfile,
    depth: u32,
    loop_depth: u32,
    budget: &mut i32,
    out: &mut Vec<Stmt>,
) {
    let n = 1 + rng.below(profile.max_block_stmts);
    for _ in 0..n {
        if *budget <= 0 {
            break;
        }
        if depth < profile.max_depth.min(4) && rng.chance(profile.branch_pct) {
            if loop_depth < profile.max_loop_depth.min(2) && rng.chance(profile.loop_pct) {
                *budget -= 4;
                let mut body = Vec::new();
                gen_block(rng, profile, depth + 1, loop_depth + 1, budget, &mut body);
                out.push(Stmt::Loop {
                    trips: 1 + rng.below(profile.max_trips.max(1)) as u8,
                    tid_mask: if rng.chance(profile.tid_trips_pct) {
                        *rng.pick(&[1u8, 3])
                    } else {
                        0
                    },
                    body,
                });
            } else {
                *budget -= 5;
                let mask = *rng.pick(&[1u32, 3, 7, 15, 63]);
                let mut then_s = Vec::new();
                gen_block(rng, profile, depth + 1, loop_depth, budget, &mut then_s);
                let mut else_s = Vec::new();
                if rng.chance(55) {
                    gen_block(rng, profile, depth + 1, loop_depth, budget, &mut else_s);
                }
                out.push(Stmt::IfElse {
                    mask,
                    cmp: *rng.pick(&CMPS),
                    lhs: rng.below(WIN as u32) as u8,
                    rhs: rng.below(mask + 1),
                    then_s,
                    else_s,
                });
            }
        } else if rng.chance(profile.mem_pct) {
            *budget -= 4;
            out.push(Stmt::Mem(gen_mem(rng, profile)));
        } else {
            *budget -= 1;
            out.push(Stmt::Compute(gen_compute(rng, profile)));
        }
    }
}

/// Generates the kernel plan for `(seed, profile)` — pure and
/// deterministic.
pub fn generate(seed: u64, profile: &FuzzProfile) -> KernelPlan {
    let mut name_hash = 0xcbf2_9ce4_8422_2325u64;
    for b in profile.name.bytes() {
        name_hash = (name_hash ^ b as u64).wrapping_mul(0x100_0000_01b3);
    }
    let mut rng = FuzzRng::new(seed ^ name_hash);
    let mut budget = profile.max_instrs as i32;
    let mut stmts = Vec::new();
    let regions = 1 + rng.below(profile.max_regions.max(1));
    for _ in 0..regions {
        gen_block(&mut rng, profile, 0, 0, &mut budget, &mut stmts);
        if rng.chance(profile.barrier_pct) {
            stmts.push(Stmt::Barrier);
        }
    }
    let window_init = (0..WIN).map(|_| rng.next_u64() as u32).collect();
    KernelPlan {
        seed,
        profile: profile.clone(),
        window_init,
        stmts,
    }
}

/// Lowering context: a monotone label counter.
struct Lower {
    next_label: u32,
}

impl Lower {
    fn fresh(&mut self, kind: &str) -> String {
        self.next_label += 1;
        format!("{kind}_{}", self.next_label)
    }

    fn stmt(&mut self, k: &mut KernelBuilder, s: &Stmt, depth: u8) {
        match s {
            Stmt::Compute(c) => self.compute(k, c),
            Stmt::Mem(m) => self.mem(k, m),
            Stmt::IfElse {
                mask,
                cmp,
                lhs,
                rhs,
                then_s,
                else_s,
            } => {
                let pd = p(STRUCT_PRED_BASE + depth % 4);
                k.and_(r(2), r(WIN_BASE + lhs % WIN), Operand::Imm(*mask));
                k.isetp(pd, *cmp, r(2), Operand::Imm(*rhs));
                match (then_s.is_empty(), else_s.is_empty()) {
                    (true, true) => {}
                    (false, true) => {
                        let join = self.fresh("join");
                        k.bra_ifn(pd, join.clone());
                        for t in then_s {
                            self.stmt(k, t, depth + 1);
                        }
                        k.label(join);
                    }
                    (true, false) => {
                        let join = self.fresh("join");
                        k.bra_if(pd, join.clone());
                        for e in else_s {
                            self.stmt(k, e, depth + 1);
                        }
                        k.label(join);
                    }
                    (false, false) => {
                        let els = self.fresh("else");
                        let join = self.fresh("join");
                        k.bra_ifn(pd, els.clone());
                        for t in then_s {
                            self.stmt(k, t, depth + 1);
                        }
                        k.bra(join.clone());
                        k.label(els);
                        for e in else_s {
                            self.stmt(k, e, depth + 1);
                        }
                        k.label(join);
                    }
                }
            }
            Stmt::Loop {
                trips,
                tid_mask,
                body,
            } => {
                let ctr = r(LOOP_CTR_BASE + depth % 4);
                let pd = p(STRUCT_PRED_BASE + depth % 4);
                if *tid_mask != 0 {
                    k.and_(ctr, r(0), Operand::Imm(*tid_mask as u32));
                    k.iadd(ctr, ctr, Operand::Imm((*trips).max(1) as u32));
                } else {
                    k.mov(ctr, Operand::Imm((*trips).max(1) as u32));
                }
                let head = self.fresh("head");
                k.label(head.clone());
                for b in body {
                    self.stmt(k, b, depth + 1);
                }
                k.iadd(ctr, ctr, -1i32);
                k.isetp(pd, CmpOp::Gt, ctr, 0i32);
                k.bra_if(pd, head);
            }
            Stmt::Barrier => {
                k.bar();
            }
        }
    }

    fn compute(&mut self, k: &mut KernelBuilder, c: &ComputeStmt) {
        let dst = r(WIN_BASE + c.dst % WIN);
        let s0 = c.srcs[0].lower();
        let s1 = c.srcs[1].lower();
        let s2 = c.srcs[2].lower();
        match c.op {
            Op::Mov => k.mov(dst, s0),
            Op::IAdd => k.iadd(dst, s0, s1),
            Op::ISub => k.isub(dst, s0, s1),
            Op::IMul => k.imul(dst, s0, s1),
            Op::IMad => k.imad(dst, s0, s1, s2),
            Op::IMin => k.imin(dst, s0, s1),
            Op::IMax => k.imax(dst, s0, s1),
            Op::And => k.and_(dst, s0, s1),
            Op::Or => k.or_(dst, s0, s1),
            Op::Xor => k.xor(dst, s0, s1),
            Op::Not => k.not(dst, s0),
            Op::Shl => k.shl(dst, s0, s1),
            Op::Shr => k.shr(dst, s0, s1),
            Op::Sra => k.sra(dst, s0, s1),
            Op::FAdd => k.fadd(dst, s0, s1),
            Op::FSub => k.fsub(dst, s0, s1),
            Op::FMul => k.fmul(dst, s0, s1),
            Op::FFma => k.ffma(dst, s0, s1, s2),
            Op::FMin => k.fmin(dst, s0, s1),
            Op::FMax => k.fmax(dst, s0, s1),
            Op::I2F => k.i2f(dst, s0),
            Op::F2I => k.f2i(dst, s0),
            Op::ISetP => k.isetp(p(COMPUTE_PRED_BASE + c.pdst % COMPUTE_PREDS), c.cmp, s0, s1),
            Op::FSetP => k.fsetp(p(COMPUTE_PRED_BASE + c.pdst % COMPUTE_PREDS), c.cmp, s0, s1),
            Op::Sel => k.sel(
                dst,
                p(COMPUTE_PRED_BASE + c.sel_pred % COMPUTE_PREDS),
                s0,
                s1,
            ),
            Op::Rcp => k.rcp(dst, s0),
            Op::Sqrt => k.sqrt(dst, s0),
            Op::Rsqrt => k.rsqrt(dst, s0),
            Op::Sin => k.sin(dst, s0),
            Op::Cos => k.cos(dst, s0),
            Op::Ex2 => k.ex2(dst, s0),
            Op::Lg2 => k.lg2(dst, s0),
            other => unreachable!("non-compute op {other} in compute stmt"),
        };
    }

    fn mem(&mut self, k: &mut KernelBuilder, m: &MemStmt) {
        let addr_src = r(WIN_BASE + m.addr_src % WIN);
        let off = (m.offset_words % 8) as i32 * 4;
        match m.space {
            MemSpace::Global => {
                // addr = param[region] + ((win & 0x3ff) << 2)
                let region: u8 = match m.kind {
                    MemKind::Store => 0,
                    MemKind::AtomicAdd => 1,
                    MemKind::Load => m.load_region % 3,
                };
                k.and_(r(1), addr_src, 0x3ffu32);
                k.shl(r(1), r(1), 2i32);
                k.iadd(r(1), r(1), Operand::Param(region));
                match m.kind {
                    MemKind::Load => k.ld(r(WIN_BASE + m.dst % WIN), r(1), off),
                    MemKind::Store => k.st(r(1), off, m.data.lower()),
                    MemKind::AtomicAdd => k.atom_add(r(1), off, m.data.lower()),
                };
            }
            MemSpace::Shared => {
                // Store window [0, 32) words, atomic window [64, 96),
                // loads read [0, 128) — stores and atomics stay disjoint.
                match m.kind {
                    MemKind::Load => {
                        k.and_(r(1), addr_src, 0x7fu32);
                        k.shl(r(1), r(1), 2i32);
                        k.ld_shared(r(WIN_BASE + m.dst % WIN), r(1), off);
                    }
                    MemKind::Store => {
                        k.and_(r(1), addr_src, 0x1fu32);
                        k.shl(r(1), r(1), 2i32);
                        k.st_shared(r(1), off, m.data.lower());
                    }
                    MemKind::AtomicAdd => {
                        k.and_(r(1), addr_src, 0x1fu32);
                        k.iadd(r(1), r(1), 64i32);
                        k.shl(r(1), r(1), 2i32);
                        k.atom_add_shared(r(1), off, m.data.lower());
                    }
                };
            }
        }
    }
}

impl KernelPlan {
    /// Lowers the plan to a validated [`Program`] through
    /// [`KernelBuilder`] (labels, CFG analysis, `SYNC` insertion).
    ///
    /// # Errors
    /// Propagates assembler/CFG errors (a lowering bug, not an input
    /// property — generated plans always lower).
    pub fn lower(&self) -> Result<Program, String> {
        let mut k = KernelBuilder::new(format!("fuzz_{}_{:016x}", self.profile.name, self.seed));
        // Prologue: r0 = global thread id; window seeded thread-variant.
        k.mov(r(0), SpecialReg::CtaId);
        k.imad(r(0), r(0), SpecialReg::NTid, SpecialReg::Tid);
        for (i, c) in self.window_init.iter().enumerate() {
            k.xor(r(WIN_BASE + i as u8 % WIN), r(0), Operand::Imm(*c));
        }
        let mut ctx = Lower { next_label: 0 };
        for s in &self.stmts {
            ctx.stmt(&mut k, s, 0);
        }
        k.exit();
        k.build()
    }

    /// Shrink-ordering metric: statement count, with loops weighted by
    /// their trip parameters so weakening a loop also counts as smaller.
    pub fn size(&self) -> usize {
        fn count(stmts: &[Stmt]) -> usize {
            stmts
                .iter()
                .map(|s| match s {
                    Stmt::IfElse { then_s, else_s, .. } => 1 + count(then_s) + count(else_s),
                    Stmt::Loop {
                        trips,
                        tid_mask,
                        body,
                    } => 1 + *trips as usize + *tid_mask as usize + count(body),
                    _ => 1,
                })
                .sum()
        }
        count(&self.stmts)
    }

    /// Strictly-smaller candidate plans for greedy shrinking: each
    /// candidate drops one statement, splices a region's body in place of
    /// the region, weakens a loop (one trip / uniform trips), or applies
    /// one of these inside a nested body.
    pub fn shrink_candidates(&self) -> Vec<KernelPlan> {
        shrink_list(&self.stmts)
            .into_iter()
            .map(|stmts| KernelPlan {
                stmts,
                ..self.clone()
            })
            .collect()
    }
}

fn with_replaced(stmts: &[Stmt], i: usize, replacement: Vec<Stmt>) -> Vec<Stmt> {
    let mut v: Vec<Stmt> = stmts[..i].to_vec();
    v.extend(replacement);
    v.extend_from_slice(&stmts[i + 1..]);
    v
}

fn shrink_list(stmts: &[Stmt]) -> Vec<Vec<Stmt>> {
    let mut out = Vec::new();
    for i in 0..stmts.len() {
        // Drop the statement entirely.
        out.push(with_replaced(stmts, i, vec![]));
        match &stmts[i] {
            Stmt::IfElse { then_s, else_s, .. } => {
                if !then_s.is_empty() {
                    out.push(with_replaced(stmts, i, then_s.clone()));
                }
                if !else_s.is_empty() {
                    out.push(with_replaced(stmts, i, else_s.clone()));
                }
                for tv in shrink_list(then_s) {
                    let mut s = stmts[i].clone();
                    if let Stmt::IfElse { then_s, .. } = &mut s {
                        *then_s = tv;
                    }
                    out.push(with_replaced(stmts, i, vec![s]));
                }
                for ev in shrink_list(else_s) {
                    let mut s = stmts[i].clone();
                    if let Stmt::IfElse { else_s, .. } = &mut s {
                        *else_s = ev;
                    }
                    out.push(with_replaced(stmts, i, vec![s]));
                }
            }
            Stmt::Loop {
                trips,
                tid_mask,
                body,
            } => {
                if !body.is_empty() {
                    out.push(with_replaced(stmts, i, body.clone()));
                }
                if *trips > 1 {
                    out.push(with_replaced(
                        stmts,
                        i,
                        vec![Stmt::Loop {
                            trips: 1,
                            tid_mask: *tid_mask,
                            body: body.clone(),
                        }],
                    ));
                }
                if *tid_mask != 0 {
                    out.push(with_replaced(
                        stmts,
                        i,
                        vec![Stmt::Loop {
                            trips: *trips,
                            tid_mask: 0,
                            body: body.clone(),
                        }],
                    ));
                }
                for bv in shrink_list(body) {
                    out.push(with_replaced(
                        stmts,
                        i,
                        vec![Stmt::Loop {
                            trips: *trips,
                            tid_mask: *tid_mask,
                            body: bv,
                        }],
                    ));
                }
            }
            _ => {}
        }
    }
    out
}

/// A self-contained, replayable failure reproducer: the lowered program
/// plus the launch shape and seed (which regenerates the input-region
/// contents). Serialises through the `isa::asm` text round-trip.
#[derive(Debug, Clone)]
pub struct Reproducer {
    /// Seed the failing case ran with (also regenerates inputs).
    pub seed: u64,
    /// Profile name the case was generated with.
    pub profile: String,
    /// Launch grid blocks.
    pub grid_blocks: u32,
    /// Launch block threads.
    pub block_threads: u32,
    /// The (possibly shrunk) kernel.
    pub program: Program,
}

impl Reproducer {
    /// Builds a reproducer from a plan and its lowered program.
    pub fn from_plan(plan: &KernelPlan, program: Program) -> Reproducer {
        Reproducer {
            seed: plan.seed,
            profile: plan.profile.name.to_string(),
            grid_blocks: plan.profile.grid_blocks,
            block_threads: plan.profile.block_threads,
            program,
        }
    }

    /// Serialises to the reproducer text format (fuzz directives followed
    /// by the program's asm text).
    pub fn to_text(&self) -> String {
        format!(
            "; warpweave fuzz reproducer — replay via the corpus test or\n\
             ; {}=0x{:x} on the matching fuzz entry point\n\
             .fuzz_seed 0x{:x}\n\
             .profile {}\n\
             .grid {}\n\
             .block {}\n\
             {}",
            SEED_ENV,
            self.seed,
            self.seed,
            self.profile,
            self.grid_blocks,
            self.block_threads,
            program_to_text(&self.program)
        )
    }

    /// Parses the reproducer text format.
    ///
    /// # Errors
    /// Reports missing/malformed fuzz directives and any asm parse error.
    pub fn from_text(text: &str) -> Result<Reproducer, String> {
        let mut seed = None;
        let mut profile = None;
        let mut grid = None;
        let mut block = None;
        let mut rest = String::new();
        for line in text.lines() {
            let t = line.trim();
            if let Some(v) = t.strip_prefix(".fuzz_seed") {
                seed = Some(parse_seed(v).ok_or_else(|| format!("bad .fuzz_seed `{v}`"))?);
            } else if let Some(v) = t.strip_prefix(".profile") {
                profile = Some(v.trim().to_string());
            } else if let Some(v) = t.strip_prefix(".grid") {
                grid = Some(
                    v.trim()
                        .parse::<u32>()
                        .map_err(|e| format!("bad .grid `{v}`: {e}"))?,
                );
            } else if let Some(v) = t.strip_prefix(".block") {
                block = Some(
                    v.trim()
                        .parse::<u32>()
                        .map_err(|e| format!("bad .block `{v}`: {e}"))?,
                );
            } else {
                rest.push_str(line);
                rest.push('\n');
            }
        }
        Ok(Reproducer {
            seed: seed.ok_or("missing .fuzz_seed directive")?,
            profile: profile.ok_or("missing .profile directive")?,
            grid_blocks: grid.ok_or("missing .grid directive")?,
            block_threads: block.ok_or("missing .block directive")?,
            program: program_from_text(&rest)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let profile = FuzzProfile::balanced();
        let a = generate(42, &profile);
        let b = generate(42, &profile);
        assert_eq!(a.stmts, b.stmts);
        assert_eq!(a.window_init, b.window_init);
        let pa = a.lower().unwrap();
        let pb = b.lower().unwrap();
        assert_eq!(pa.instructions(), pb.instructions());
    }

    #[test]
    fn profiles_differ_and_lower() {
        let mut rendered = std::collections::HashSet::new();
        for profile in FuzzProfile::all() {
            let plan = generate(7, &profile);
            let prog = plan.lower().unwrap();
            assert!(!prog.is_empty());
            assert!(prog.instructions().last().unwrap().op == Op::Exit);
            rendered.insert(prog.disassemble());
        }
        assert_eq!(rendered.len(), 4, "profiles must shape distinct kernels");
    }

    #[test]
    fn hundred_seeds_lower_validly() {
        for profile in FuzzProfile::all() {
            for seed in 0..100u64 {
                let plan = generate(seed, &profile);
                let prog = plan
                    .lower()
                    .unwrap_or_else(|e| panic!("{} seed {seed}: {e}", profile.name));
                // Branch targets were validated by Program construction;
                // additionally every barrier must sit at top level (no
                // guard), which Instruction::validate enforces.
                assert!(prog.len() < 1024, "runaway kernel size");
            }
        }
    }

    #[test]
    fn shrink_candidates_are_strictly_smaller() {
        let plan = generate(3, &FuzzProfile::pathological());
        let n = plan.size();
        let cands = plan.shrink_candidates();
        assert!(!cands.is_empty());
        for c in &cands {
            assert!(
                c.size() < n,
                "candidate did not shrink: {} >= {n}",
                c.size()
            );
        }
    }

    #[test]
    fn reproducer_text_roundtrip() {
        let plan = generate(11, &FuzzProfile::memory_heavy());
        let prog = plan.lower().unwrap();
        let rep = Reproducer::from_plan(&plan, prog);
        let text = rep.to_text();
        let back = Reproducer::from_text(&text).unwrap();
        assert_eq!(back.seed, rep.seed);
        assert_eq!(back.profile, rep.profile);
        assert_eq!(back.grid_blocks, rep.grid_blocks);
        assert_eq!(back.block_threads, rep.block_threads);
        assert_eq!(back.program.name(), rep.program.name());
        assert_eq!(back.program.instructions(), rep.program.instructions());
    }

    #[test]
    fn seed_parsing() {
        assert_eq!(parse_seed("42"), Some(42));
        assert_eq!(parse_seed("0x2a"), Some(42));
        assert_eq!(parse_seed(" 0X2A "), Some(42));
        assert_eq!(parse_seed("nope"), None);
    }
}
