//! Property-based verification of the CFG analyses: the iterative
//! immediate-dominator algorithm is checked against a brute-force dataflow
//! solution on randomly generated structured programs, and SYNC insertion
//! invariants are validated.

use proptest::prelude::*;

use warpweave_isa::{
    build_cfg, dominators, p, postdominators, r, CmpOp, KernelBuilder, Op, Program,
};

/// Generates a random structured program from a recipe of nested
/// constructs. `recipe` digits: 0-3 = ALU, 4-6 = if/else, 7-9 = loop.
fn program_from_recipe(recipe: &[u8]) -> Program {
    let mut k = KernelBuilder::new("prop");
    let mut label = 0usize;
    fn emit(k: &mut KernelBuilder, recipe: &[u8], pos: &mut usize, label: &mut usize, depth: u32) {
        let mut budget = 3;
        while *pos < recipe.len() && budget > 0 {
            let d = recipe[*pos];
            *pos += 1;
            budget -= 1;
            match d {
                0..=3 => {
                    k.iadd(r(8 + (d % 4)), r(8), 1i32);
                }
                4..=6 if depth < 3 => {
                    let id = *label;
                    *label += 1;
                    k.isetp(p(0), CmpOp::Gt, r(8), d as i32);
                    k.bra_if(p(0), format!("else{id}"));
                    emit(k, recipe, pos, label, depth + 1);
                    k.bra(format!("join{id}"));
                    k.label(format!("else{id}"));
                    emit(k, recipe, pos, label, depth + 1);
                    k.label(format!("join{id}"));
                    k.nop();
                }
                7..=9 if depth < 3 => {
                    let id = *label;
                    *label += 1;
                    k.mov(r(12), (d as i32) - 5);
                    k.label(format!("loop{id}"));
                    emit(k, recipe, pos, label, depth + 1);
                    k.iadd(r(12), r(12), -1i32);
                    k.isetp(p(1), CmpOp::Gt, r(12), 0i32);
                    k.bra_if(p(1), format!("loop{id}"));
                }
                _ => {
                    k.nop();
                }
            }
        }
    }
    let mut pos = 0;
    emit(&mut k, recipe, &mut pos, &mut label, 0);
    k.exit();
    k.build().expect("random structured program assembles")
}

/// Brute-force dominator sets by iterative dataflow:
/// `Dom(v) = {v} ∪ ⋂_{p ∈ preds(v)} Dom(p)`.
fn brute_force_dom_sets(nblocks: usize, preds: &[Vec<usize>]) -> Vec<Vec<bool>> {
    let mut dom = vec![vec![true; nblocks]; nblocks];
    dom[0] = vec![false; nblocks];
    dom[0][0] = true;
    let mut changed = true;
    while changed {
        changed = false;
        for v in 1..nblocks {
            let mut new: Vec<bool> = if preds[v].is_empty() {
                let mut only_self = vec![false; nblocks];
                only_self[v] = true;
                only_self
            } else {
                let mut acc = vec![true; nblocks];
                for &pr in &preds[v] {
                    for (a, b) in acc.iter_mut().zip(&dom[pr]) {
                        *a = *a && *b;
                    }
                }
                acc
            };
            new[v] = true;
            if new != dom[v] {
                dom[v] = new;
                changed = true;
            }
        }
    }
    dom
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The iterative idom must equal the unique closest strict dominator
    /// from the brute-force dominator sets.
    #[test]
    fn idoms_match_brute_force(recipe in proptest::collection::vec(0u8..10, 1..24)) {
        let prog = program_from_recipe(&recipe);
        let cfg = build_cfg(prog.instructions());
        let idom = dominators(&cfg);
        let n = cfg.blocks.len();
        let preds: Vec<Vec<usize>> = (0..n).map(|b| cfg.blocks[b].preds.clone()).collect();
        let dom = brute_force_dom_sets(n, &preds);
        for v in 1..n {
            // Strict dominators of v.
            let strict: Vec<usize> =
                (0..n).filter(|&u| u != v && dom[v][u]).collect();
            // The idom is the strict dominator dominated by all others.
            let expect = strict
                .iter()
                .copied()
                .find(|&c| strict.iter().all(|&u| dom[c][u]));
            prop_assert_eq!(idom[v], expect, "block {} of {} blocks", v, n);
        }
    }

    /// Structured generation always yields frontier-ordered layouts, every
    /// divergent branch gets a reconvergence annotation pointing at a SYNC,
    /// and every SYNC carries a PCdiv payload at a lower address.
    #[test]
    fn sync_insertion_invariants(recipe in proptest::collection::vec(0u8..10, 1..24)) {
        let prog = program_from_recipe(&recipe);
        prop_assert!(prog.is_frontier_ordered());
        for (pc, ins) in prog.instructions().iter().enumerate() {
            if ins.is_divergent_branch() {
                if let Some(rc) = ins.reconv {
                    prop_assert_eq!(prog[rc].op, Op::Sync,
                        "branch @{} reconverges at a SYNC", pc);
                    prop_assert!(rc.index() > pc, "reconvergence after divergence");
                }
            }
            if ins.op == Op::Sync {
                let pcdiv = ins.sync_pcdiv.expect("sync has payload");
                prop_assert!(pcdiv.index() < pc, "PCdiv below PCrec");
            }
        }
    }

    /// Post-dominators on structured programs: every reachable block is
    /// post-dominated by the virtual exit path (its ipdom chain terminates).
    #[test]
    fn ipdom_chains_terminate(recipe in proptest::collection::vec(0u8..10, 1..24)) {
        let prog = program_from_recipe(&recipe);
        let cfg = build_cfg(prog.instructions());
        let ipdom = postdominators(&cfg);
        let exit = cfg.exit_node();
        for b in 0..cfg.blocks.len() {
            let mut cur = b;
            let mut steps = 0;
            while cur != exit {
                match ipdom[cur] {
                    Some(nxt) => cur = nxt,
                    None => break, // unreachable block
                }
                steps += 1;
                prop_assert!(steps <= cfg.blocks.len() + 1, "ipdom cycle at {}", b);
            }
        }
    }
}
