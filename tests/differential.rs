//! Differential testing: randomly generated structured kernels must produce
//! bit-identical architectural results on every front-end (Baseline stack,
//! Warp64, SBI, SWI, SBI+SWI) — the strongest cross-cutting correctness
//! property of the simulator.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use warpweave::core::{Launch, Sm, SmConfig};
use warpweave::isa::{p, r, CmpOp, KernelBuilder, Operand, Program, SpecialReg};

const OUT: u32 = 0x40_0000;

/// Generates a random structured kernel: straight-line ALU, divergent
/// if/else nests and bounded data-dependent loops, finishing with a store
/// of the working registers.
fn random_program(seed: u64) -> Program {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut k = KernelBuilder::new(format!("fuzz{seed}"));
    let mut label = 0usize;
    // r0 = gtid; r1 = &out[gtid]; r8..r12 = working registers seeded from tid.
    k.mov(r(0), SpecialReg::CtaId);
    k.imad(r(0), r(0), SpecialReg::NTid, SpecialReg::Tid);
    k.shl(r(1), r(0), 2i32);
    k.iadd(r(1), Operand::Param(0), r(1));
    for i in 0..5u8 {
        k.imad(r(8 + i), r(0), 2654435761u32 as i32, (i as i32) * 97 + 13);
    }
    gen_block(&mut k, &mut rng, 0, &mut label);
    // Fold the working registers and store.
    k.mov(r(2), 0i32);
    for i in 0..5u8 {
        k.xor(r(2), r(2), r(8 + i));
    }
    k.st(r(1), 0, r(2));
    k.exit();
    k.build().expect("random program assembles")
}

fn gen_block(k: &mut KernelBuilder, rng: &mut SmallRng, depth: usize, label: &mut usize) {
    let stmts = rng.gen_range(2..5);
    for _ in 0..stmts {
        let wr = |rng: &mut SmallRng| r(8 + rng.gen_range(0..5u8));
        match rng.gen_range(0..if depth < 3 { 10 } else { 6 }) {
            0..=3 => {
                // ALU statement.
                let (d, a, b) = (wr(rng), wr(rng), wr(rng));
                match rng.gen_range(0..5) {
                    0 => k.iadd(d, a, b),
                    1 => k.imul(d, a, b),
                    2 => k.xor(d, a, b),
                    3 => k.imad(d, a, b, rng.gen_range(-9..9)),
                    _ => k.shr(d, a, rng.gen_range(0..5)),
                };
            }
            4 | 5 => {
                // Predicated statement (no branch).
                let c = wr(rng);
                k.isetp(p(0), CmpOp::Gt, c, rng.gen_range(-100..100));
                let (d, a) = (wr(rng), wr(rng));
                k.guard_t(p(0)).iadd(d, a, 1i32);
            }
            6 | 7 => {
                // Divergent if/else.
                let id = *label;
                *label += 1;
                let c = wr(rng);
                k.and_(r(3), c, 1 << rng.gen_range(0..4));
                k.isetp(p(1), CmpOp::Eq, r(3), 0i32);
                k.bra_if(p(1), format!("else{id}"));
                gen_block(k, rng, depth + 1, label);
                k.bra(format!("join{id}"));
                k.label(format!("else{id}"));
                gen_block(k, rng, depth + 1, label);
                k.label(format!("join{id}"));
                k.nop();
            }
            _ => {
                // Bounded, data-dependent loop (1..=4 iterations).
                let id = *label;
                *label += 1;
                let c = wr(rng);
                k.and_(r(4), c, 3i32);
                k.iadd(r(4), r(4), 1i32);
                k.label(format!("loop{id}"));
                gen_block(k, rng, depth + 1, label);
                k.iadd(r(4), r(4), -1i32);
                k.isetp(p(2), CmpOp::Gt, r(4), 0i32);
                k.bra_if(p(2), format!("loop{id}"));
            }
        }
    }
}

fn run_on(cfg: SmConfig, prog: Program, n: u32) -> Vec<u32> {
    let launch = Launch::new(prog, n / 256, 256).with_params(vec![OUT]);
    let mut sm = Sm::new(cfg, launch).expect("valid config");
    sm.run(50_000_000).expect("kernel finishes");
    sm.memory().read_words(OUT, n as usize)
}

#[test]
fn random_kernels_agree_across_architectures() {
    // The config set comes from the shared grid module — the same
    // front-end list the sweep and the golden baseline exercise — so the
    // fuzzer's coverage tracks the canonical grid by construction.
    for seed in 0..12u64 {
        let prog = random_program(seed);
        let n = 1024;
        let reference = run_on(SmConfig::baseline(), prog.clone(), n);
        for cfg in warpweave::bench::grid::differential_configs() {
            let name = cfg.name.clone();
            let got = run_on(cfg, prog.clone(), n);
            assert_eq!(
                got, reference,
                "seed {seed}: {name} diverged from the baseline"
            );
        }
    }
}

#[test]
fn random_kernels_are_deterministic() {
    let prog = random_program(99);
    let a = run_on(SmConfig::sbi_swi(), prog.clone(), 512);
    let b = run_on(SmConfig::sbi_swi(), prog, 512);
    assert_eq!(a, b);
}
