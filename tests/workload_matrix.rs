//! Every registered workload, verified against its host reference on every
//! architecture (test-scale inputs).
//!
//! All configuration sets come from `warpweave::bench::grid` — the same
//! canonical grid the golden baseline pins — so the test matrix and the
//! committed `BENCH_golden.json` can never silently diverge.

use warpweave::bench::grid;
use warpweave::core::SmConfig;
use warpweave::workloads::{all_workloads, run_prepared, Scale};

#[test]
fn all_workloads_verify_on_all_architectures() {
    let configs = grid::figure7_configs();
    for w in all_workloads() {
        for cfg in &configs {
            run_prepared(cfg, w.prepare(Scale::Test), true).unwrap_or_else(|e| {
                panic!("{} on {}: {e}", w.name(), cfg.name);
            });
        }
    }
}

#[test]
fn lane_shuffles_and_associativity_preserve_results() {
    // The fig. 8(b) and fig. 9 columns, exactly as the figure binaries
    // run them.
    let w = warpweave::by_name("SortingNetworks").expect("registered");
    for cfg in grid::lane_shuffle_configs()
        .iter()
        .chain(&grid::associativity_configs())
    {
        run_prepared(cfg, w.prepare(Scale::Test), true)
            .unwrap_or_else(|e| panic!("{}: {e}", cfg.name));
    }
}

#[test]
fn constraint_study_configs_preserve_results() {
    // The fig. 8(a) columns (constraints off/on) on one loop-carried
    // irregular workload.
    let w = warpweave::by_name("BFS").expect("registered");
    for cfg in &grid::constraint_configs() {
        run_prepared(cfg, w.prepare(Scale::Test), true)
            .unwrap_or_else(|e| panic!("{}: {e}", cfg.name));
    }
}

#[test]
fn all_workloads_verify_on_multi_sm_machine() {
    // Every kernel's result must survive the parallel machine's
    // snapshot-and-merge memory model (disjoint stores in SM order,
    // atomic deltas summed) — the semantic contract of `Machine`.
    use warpweave::workloads::run_prepared_multi_sm;
    let cfg = SmConfig::sbi_swi();
    for w in all_workloads() {
        run_prepared_multi_sm(&cfg, 4, w.prepare(Scale::Test), true).unwrap_or_else(|e| {
            panic!("{} on 4-SM {}: {e}", w.name(), cfg.name);
        });
    }
}

#[test]
fn registry_matches_paper_layout() {
    use warpweave::workloads::{irregular, regular};
    // Fig. 7a order.
    let names: Vec<&str> = regular().iter().map(|w| w.name()).collect();
    assert_eq!(
        names,
        [
            "3DFD",
            "Backprop",
            "BinomialOptions",
            "BlackScholes",
            "DWTHaar1D",
            "FastWalshTransform",
            "Hotspot",
            "MatrixMul",
            "MonteCarlo",
            "Transpose"
        ]
    );
    // Fig. 7b order.
    let names: Vec<&str> = irregular().iter().map(|w| w.name()).collect();
    assert_eq!(
        names,
        [
            "BFS",
            "ConvolutionSeparable",
            "Eigenvalues",
            "Histogram",
            "LUD",
            "Mandelbrot",
            "Needleman-Wunsch",
            "SortingNetworks",
            "SRAD",
            "TMD1",
            "TMD2"
        ]
    );
}
