//! Every registered workload, verified against its host reference on every
//! architecture (test-scale inputs).

use warpweave::core::SmConfig;
use warpweave::workloads::{all_workloads, run_prepared, Scale};

#[test]
fn all_workloads_verify_on_all_architectures() {
    let configs = SmConfig::figure7_set();
    for w in all_workloads() {
        for cfg in &configs {
            run_prepared(cfg, w.prepare(Scale::Test), true).unwrap_or_else(|e| {
                panic!("{} on {}: {e}", w.name(), cfg.name);
            });
        }
    }
}

#[test]
fn lane_shuffles_and_associativity_preserve_results() {
    use warpweave::core::{Associativity, LaneShuffle};
    let w = warpweave::by_name("SortingNetworks").expect("registered");
    for shuffle in LaneShuffle::ALL {
        let cfg = SmConfig::swi().with_lane_shuffle(shuffle);
        run_prepared(&cfg, w.prepare(Scale::Test), true)
            .unwrap_or_else(|e| panic!("{shuffle:?}: {e}"));
    }
    for assoc in [
        Associativity::Full,
        Associativity::Ways(11),
        Associativity::Ways(3),
        Associativity::Ways(1),
    ] {
        let cfg = SmConfig::swi().with_warps(24).with_assoc(assoc);
        run_prepared(&cfg, w.prepare(Scale::Test), true)
            .unwrap_or_else(|e| panic!("{assoc:?}: {e}"));
    }
}

#[test]
fn all_workloads_verify_on_multi_sm_machine() {
    // Every kernel's result must survive the parallel machine's
    // snapshot-and-merge memory model (disjoint stores in SM order,
    // atomic deltas summed) — the semantic contract of `Machine`.
    use warpweave::workloads::run_prepared_multi_sm;
    let cfg = SmConfig::sbi_swi();
    for w in all_workloads() {
        run_prepared_multi_sm(&cfg, 4, w.prepare(Scale::Test), true).unwrap_or_else(|e| {
            panic!("{} on 4-SM {}: {e}", w.name(), cfg.name);
        });
    }
}

#[test]
fn registry_matches_paper_layout() {
    use warpweave::workloads::{irregular, regular};
    // Fig. 7a order.
    let names: Vec<&str> = regular().iter().map(|w| w.name()).collect();
    assert_eq!(
        names,
        [
            "3DFD",
            "Backprop",
            "BinomialOptions",
            "BlackScholes",
            "DWTHaar1D",
            "FastWalshTransform",
            "Hotspot",
            "MatrixMul",
            "MonteCarlo",
            "Transpose"
        ]
    );
    // Fig. 7b order.
    let names: Vec<&str> = irregular().iter().map(|w| w.name()).collect();
    assert_eq!(
        names,
        [
            "BFS",
            "ConvolutionSeparable",
            "Eigenvalues",
            "Histogram",
            "LUD",
            "Mandelbrot",
            "Needleman-Wunsch",
            "SortingNetworks",
            "SRAD",
            "TMD1",
            "TMD2"
        ]
    );
}
