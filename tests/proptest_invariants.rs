//! Property-based tests (proptest) over the core data structures:
//! mask algebra, lane-shuffle bijectivity, dependency-matrix algebra,
//! frontier-heap invariants and coalescing conservation.

use proptest::prelude::*;

use warpweave::core::{DepMatrix, FrontierHeap, LaneShuffle, Mask, Transition};
use warpweave::isa::Pc;
use warpweave::mem::{atomic_transactions, coalesce};

proptest! {
    /// Mask set algebra: de Morgan / partition properties.
    #[test]
    fn mask_algebra(a in any::<u64>(), b in any::<u64>()) {
        let (ma, mb) = (Mask::from_bits(a), Mask::from_bits(b));
        prop_assert_eq!((ma | mb).bits(), a | b);
        prop_assert_eq!((ma & mb).bits(), a & b);
        prop_assert_eq!((ma - mb) | (ma & mb), ma);
        prop_assert!((ma - mb).is_disjoint(mb));
        prop_assert_eq!(ma.count() + mb.count(),
            (ma | mb).count() + (ma & mb).count());
        let collected: Mask = ma.iter().collect();
        prop_assert_eq!(collected, ma);
    }

    /// Every lane-shuffle policy is a bijection for every warp.
    #[test]
    fn lane_shuffles_bijective(wid in 0usize..64, width_log in 2u32..7) {
        let width = 1usize << width_log;
        for policy in LaneShuffle::ALL {
            let mut seen = vec![false; width];
            for tid in 0..width {
                let lane = policy.lane(tid, wid, width, 64);
                prop_assert!(lane < width);
                prop_assert!(!seen[lane]);
                seen[lane] = true;
            }
            // Mask translation preserves population for arbitrary masks.
            let m = Mask::from_bits(0x5a5a_a5a5_dead_beef) & Mask::full(width);
            prop_assert_eq!(policy.mask_to_lanes(m, wid, width, 64).count(), m.count());
        }
    }

    /// Boolean matrix composition is associative; identity is neutral.
    #[test]
    fn dep_matrix_algebra(bits_a in 0u16..512, bits_b in 0u16..512, bits_c in 0u16..512) {
        let mk = |bits: u16| {
            let mut m = DepMatrix::identity();
            for i in 0..3 {
                for j in 0..3 {
                    m.set(i, j, (bits >> (i * 3 + j)) & 1 == 1);
                }
            }
            m
        };
        let (a, b, c) = (mk(bits_a), mk(bits_b), mk(bits_c));
        prop_assert_eq!(a.compose(b).compose(c), a.compose(b.compose(c)));
        prop_assert_eq!(a.compose(DepMatrix::identity()), a);
        prop_assert_eq!(DepMatrix::identity().compose(a), a);
        // Composition is monotone: it never turns the all-ones matrix off
        // the diagonal reachability of its operands.
        prop_assert_eq!(DepMatrix::ones().compose(DepMatrix::ones()), DepMatrix::ones());
    }

    /// Frontier-heap invariants: splits always partition the alive threads,
    /// the HCT stays PC-sorted, and sorted-mode CCT inserts keep order.
    #[test]
    fn frontier_heap_partition(splits in proptest::collection::vec((0u32..64, 1u64..u64::MAX), 1..12)) {
        let full = Mask::full(64);
        let mut heap = FrontierHeap::new(full);
        for (pc, sel) in splits {
            let Some(cur) = heap.primary() else { break };
            let taken = Mask::from_bits(sel) & cur.mask;
            let t = Transition::from_branch(cur.mask, taken, Pc(pc), Pc(pc / 2 + 1));
            heap.apply_pair(Some(t), None, true);
            prop_assert_eq!(heap.alive_mask(), full, "splits must partition");
            if let (Some(a), Some(b)) = (heap.primary(), heap.secondary()) {
                prop_assert!(a.pc < b.pc, "HCT must stay sorted");
                prop_assert!(a.mask.is_disjoint(b.mask));
            }
        }
    }

    /// Coalescing conserves lanes and never exceeds one block per lane;
    /// atomics never produce fewer transactions than plain coalescing.
    #[test]
    fn coalesce_conservation(addrs in proptest::collection::vec(0u32..1u32 << 20, 1..64)) {
        let accesses: Vec<(usize, u32)> =
            addrs.iter().enumerate().map(|(l, &a)| (l, a & !3)).collect();
        let txs = coalesce(&accesses);
        let total: usize = txs.iter().map(|t| t.lanes.len()).sum();
        prop_assert_eq!(total, accesses.len());
        prop_assert!(txs.len() <= accesses.len());
        for t in &txs {
            prop_assert_eq!(t.block_addr % 128, 0);
            for &l in &t.lanes {
                prop_assert_eq!(accesses[l].1 & !127, t.block_addr);
            }
        }
        let atomic = atomic_transactions(&accesses);
        prop_assert!(atomic.len() >= txs.len());
    }
}
