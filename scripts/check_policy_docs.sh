#!/usr/bin/env bash
# Fails if any issue policy registered in core::policy::PolicyRegistry is
# missing from README.md's policy table. The registry is the source of
# truth (`bench_sweep --list-frontends` prints it); the README must name
# every entry in backticks, which is exactly how the table renders them.
set -euo pipefail
cd "$(dirname "$0")/.."

names="$(cargo run --release -q -p warpweave-bench --bin bench_sweep -- --list-frontends)"
if [ -z "$names" ]; then
    echo "bench_sweep --list-frontends printed no policies" >&2
    exit 1
fi

status=0
while IFS= read -r name; do
    [ -z "$name" ] && continue
    if ! grep -qF "\`$name\`" README.md; then
        echo "README.md policy table is missing registered policy '$name'" >&2
        status=1
    fi
done <<<"$names"

if [ "$status" -eq 0 ]; then
    echo "README.md policy table covers all registered policies:"
    printf '  %s\n' $names
fi
exit $status
