//! Quickstart: assemble a divergent kernel, run it on the baseline and on
//! SBI+SWI, and compare IPC.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use warpweave::core::{Launch, Sm, SmConfig};
use warpweave::isa::{p, r, CmpOp, KernelBuilder, Operand, SpecialReg};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A kernel with a data-dependent loop: out[i] = collatz_steps(i % 97).
    let mut k = KernelBuilder::new("collatz");
    k.mov(r(0), SpecialReg::CtaId);
    k.imad(r(0), r(0), SpecialReg::NTid, SpecialReg::Tid); // global tid
                                                           // n = tid % 97 + 1 (via repeated subtraction to keep the ISA tiny)
    k.mov(r(1), r(0));
    k.label("mod");
    k.isetp(p(0), CmpOp::Ge, r(1), 97i32);
    k.guard_t(p(0)).isub(r(1), r(1), 97i32);
    k.bra_if(p(0), "mod");
    k.iadd(r(1), r(1), 1i32);
    k.mov(r(2), 0i32); // steps
    k.label("loop");
    k.isetp(p(1), CmpOp::Le, r(1), 1i32);
    k.bra_if(p(1), "done");
    // if odd: n = 3n + 1 else n = n / 2   ← divergence!
    k.and_(r(3), r(1), 1i32);
    k.isetp(p(2), CmpOp::Eq, r(3), 0i32);
    k.bra_if(p(2), "even");
    k.imad(r(1), r(1), 3i32, 1i32);
    k.bra("next");
    k.label("even");
    k.shr(r(1), r(1), 1i32);
    k.label("next");
    k.iadd(r(2), r(2), 1i32);
    k.bra("loop");
    k.label("done");
    k.shl(r(4), r(0), 2i32);
    k.iadd(r(4), Operand::Param(0), r(4));
    k.st(r(4), 0, r(2));
    k.exit();
    let program = k.build()?;

    const OUT: u32 = 0x100000;
    let mut results = Vec::new();
    for cfg in [SmConfig::baseline(), SmConfig::sbi_swi()] {
        let name = cfg.name.clone();
        let launch = Launch::new(program.clone(), 16, 256).with_params(vec![OUT]);
        let mut sm = Sm::new(cfg, launch)?;
        let stats = sm.run(10_000_000)?.clone();
        println!(
            "{name:<10} {:>8} cycles   IPC {:>5.1}   SIMD efficiency {:>5.1}%",
            stats.cycles,
            stats.ipc(),
            stats.simd_efficiency(sm.config().warp_width) * 100.0
        );
        results.push((sm.memory().read_words(OUT, 4096), stats.ipc()));
    }
    // Both architectures compute the same answer.
    assert_eq!(results[0].0, results[1].0);
    // Spot-check: collatz_steps(27) is famously 111.
    assert_eq!(results[0].0[26], 111); // tid 26 → n = 27
    println!(
        "\nSBI+SWI speedup over baseline: {:.2}x (identical results verified)",
        results[1].1 / results[0].1
    );
    Ok(())
}
