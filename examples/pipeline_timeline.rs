//! The paper's figure 2, as a runnable example: watch the execution
//! pipeline fill under SIMT, SBI (with/without reconvergence constraints),
//! SWI and SBI+SWI for a toy if-then-else kernel.
//!
//! ```sh
//! cargo run --release --example pipeline_timeline
//! ```

use warpweave::core::{render_timeline, Launch, Sm, SmConfig};
use warpweave::isa::{p, r, CmpOp, KernelBuilder, Program, SpecialReg};

fn toy() -> Program {
    let mut k = KernelBuilder::new("fig2");
    k.and_(r(0), SpecialReg::Tid, 1i32);
    k.isetp(p(0), CmpOp::Eq, r(0), 0i32);
    k.bra_if(p(0), "else"); // the divergent branch (paper's instr 1)
    k.iadd(r(1), r(1), 1i32); // 2
    k.iadd(r(2), r(2), 1i32); // 3
    k.iadd(r(3), r(3), 1i32); // 4
    k.bra("join");
    k.label("else");
    k.iadd(r(4), r(4), 1i32); // 5
    k.label("join");
    k.iadd(r(5), r(5), 1i32); // 6
    k.exit();
    k.build().expect("toy kernel assembles")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    for (label, mut cfg) in [
        ("(a) SIMT", SmConfig::baseline()),
        ("(b) SBI", SmConfig::sbi().with_constraints(false)),
        (
            "(c) SBI + constraints",
            SmConfig::sbi().with_constraints(true),
        ),
        ("(d) SWI", SmConfig::swi()),
        ("(e) SBI+SWI", SmConfig::sbi_swi()),
    ] {
        cfg.num_warps = 2;
        cfg.warp_width = 4;
        for g in &mut cfg.groups {
            g.width = g.width.min(4);
        }
        let mut sm = Sm::new(cfg, Launch::new(toy(), 2, 4))?;
        sm.enable_trace();
        sm.run(10_000)?;
        println!("== {label} ==  ({} cycles)", sm.stats().cycles);
        println!("{}", render_timeline(sm.trace_events(), 2, 4));
    }
    Ok(())
}
