//! BFS across all five architectures — the paper's motivating class of
//! irregular application (data-dependent neighbour loops, one kernel launch
//! per frontier level).
//!
//! ```sh
//! cargo run --release --example bfs_frontier
//! ```

use warpweave::core::SmConfig;
use warpweave::workloads::{by_name, run_prepared, Scale};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bfs = by_name("BFS").expect("BFS is registered");
    println!("level-synchronous BFS on a random graph (results verified):\n");
    let mut base_ipc = None;
    for cfg in SmConfig::figure7_set() {
        let name = cfg.name.clone();
        let stats = run_prepared(&cfg, bfs.prepare(Scale::Bench), true)?;
        let speedup = base_ipc
            .map(|b: f64| format!("{:+.1}%", (stats.ipc() / b - 1.0) * 100.0))
            .unwrap_or_else(|| "—".into());
        if base_ipc.is_none() {
            base_ipc = Some(stats.ipc());
        }
        println!(
            "{name:<10} IPC {:>5.2}   cycles {:>9}   L1 hit-rate {:>5.1}%   vs baseline {speedup}",
            stats.ipc(),
            stats.cycles,
            stats.l1.hit_rate() * 100.0,
        );
    }
    Ok(())
}
