//! Mandelbrot escape-time rendering on the simulated GPU, with an ASCII
//! dump of the result — and a demonstration of the paper's observation that
//! a block barrier in the pixel loop stops warp-splits from running ahead,
//! flattening the architecture differences (§5.1).
//!
//! ```sh
//! cargo run --release --example mandelbrot_escape
//! ```

use warpweave::core::SmConfig;
use warpweave::workloads::{by_name, run_prepared, Scale};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mandel = by_name("Mandelbrot").expect("Mandelbrot is registered");
    println!("escape-time iteration counts per architecture (verified):\n");
    for cfg in SmConfig::figure7_set() {
        let name = cfg.name.clone();
        let stats = run_prepared(&cfg, mandel.prepare(Scale::Bench), true)?;
        println!(
            "{name:<10} IPC {:>5.1}   cycles {:>8}   barrier releases {:>5}",
            stats.ipc(),
            stats.cycles,
            stats.barrier_releases
        );
    }

    // Render a small set membership chart on the host mirror for flavour.
    println!("\nthe set itself (host mirror of the kernel's f32 arithmetic):\n");
    let (w, h, max_iter) = (72, 24, 32u32);
    for row in 0..h {
        let mut line = String::new();
        for col in 0..w {
            let cre = -2.2 + 3.0 * col as f32 / w as f32;
            let cim = -1.2 + 2.4 * row as f32 / h as f32;
            let (mut zr, mut zi, mut it) = (0.0f32, 0.0f32, 0);
            while it < max_iter {
                let (zr2, zi2) = (zr * zr, zi * zi);
                if zr2 + zi2 > 4.0 {
                    break;
                }
                let nzr = zr2 - zi2 + cre;
                zi = 2.0 * zr * zi + cim;
                zr = nzr;
                it += 1;
            }
            line.push(b" .:-=+*#%@"[(it as usize * 9) / max_iter as usize] as char);
        }
        println!("{line}");
    }
    Ok(())
}
