//! Lane-shuffling laboratory (paper table 1 / fig. 8b): build a workload
//! with *correlated* imbalance — thread 0 of every warp does the most work —
//! and watch each static shuffle decorrelate the idle lanes so SWI can pair
//! warps.
//!
//! ```sh
//! cargo run --release --example lane_shuffle_lab
//! ```

use warpweave::core::{LaneShuffle, Launch, Sm, SmConfig};
use warpweave::isa::{p, r, CmpOp, KernelBuilder, Program, SpecialReg};

/// Work proportional to 64 − lane-in-warp: maximally tid-correlated.
fn skewed_program() -> Program {
    let mut k = KernelBuilder::new("skewed");
    k.and_(r(0), SpecialReg::Tid, 63i32);
    k.isub(r(1), 64i32, r(0)); // trip count: 64 … 1
    k.mov(r(2), 1i32);
    k.label("work");
    k.imad(r(2), r(2), 3i32, 7i32);
    k.imad(r(2), r(2), 5i32, 11i32);
    k.iadd(r(1), r(1), -1i32);
    k.isetp(p(0), CmpOp::Gt, r(1), 0i32);
    k.bra_if(p(0), "work");
    k.exit();
    k.build().expect("skewed kernel assembles")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("correlated-imbalance kernel under SWI, by lane-shuffle policy:\n");
    let mut identity_ipc = None;
    for shuffle in LaneShuffle::ALL {
        let cfg = SmConfig::swi().with_lane_shuffle(shuffle);
        let mut sm = Sm::new(cfg, Launch::new(skewed_program(), 16, 256))?;
        let stats = sm.run(10_000_000)?.clone();
        let delta = identity_ipc
            .map(|b: f64| format!("{:+.2}%", (stats.ipc() / b - 1.0) * 100.0))
            .unwrap_or_else(|| "(reference)".into());
        if identity_ipc.is_none() {
            identity_ipc = Some(stats.ipc());
        }
        println!(
            "{:<11} IPC {:>6.2}   same-group co-issues {:>7}   {delta}",
            shuffle.name(),
            stats.ipc(),
            stats.same_group_coissues,
        );
    }
    println!("\npaper: XorRev is the most consistent winner (table 1, fig. 8b).");
    Ok(())
}
